// Table/CSV reporters and the bench CLI parser.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/args.hpp"
#include "harness/table.hpp"

namespace h = pgraph::harness;

TEST(Table, AlignedOutput) {
  h::Table t({"a", "long-header"});
  t.add_row({"x", "1"});
  t.add_row({"yyyy", "22"});
  std::stringstream ss;
  t.print(ss);
  const std::string out = ss.str();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("| a    | long-header | "), std::string::npos);
  EXPECT_NE(out.find("| yyyy | 22          | "), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  h::Table t({"a", "b", "c"});
  t.add_row({"1"});
  std::stringstream ss;
  t.print_csv(ss);
  EXPECT_EQ(ss.str(), "a,b,c\n1,,\n");
}

TEST(Table, CsvQuotesSpecialCells) {
  // RFC 4180: cells with commas, quotes or newlines are quoted, embedded
  // quotes doubled.  Bench row labels like "base, +offload" hit this.
  h::Table t({"label", "plain"});
  t.add_row({"base, +offload", "1"});
  t.add_row({"say \"hi\"", "2"});
  t.add_row({"two\nlines", "3"});
  std::stringstream ss;
  t.print_csv(ss);
  EXPECT_EQ(ss.str(),
            "label,plain\n"
            "\"base, +offload\",1\n"
            "\"say \"\"hi\"\"\",2\n"
            "\"two\nlines\",3\n");
}

TEST(Table, CsvQuotesHeaderCellsToo) {
  h::Table t({"a,b", "c"});
  t.add_row({"x", "y"});
  std::stringstream ss;
  t.print_csv(ss);
  EXPECT_EQ(ss.str(), "\"a,b\",c\nx,y\n");
}

TEST(Table, EngineeringUnits) {
  EXPECT_EQ(h::Table::eng(12.0), "12 ns");
  EXPECT_EQ(h::Table::eng(1500.0), "1.500 us");
  EXPECT_EQ(h::Table::eng(2.5e6), "2.500 ms");
  EXPECT_EQ(h::Table::eng(3.25e9), "3.250 s");
}

TEST(Table, NumPrecision) {
  EXPECT_EQ(h::Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(h::Table::num(2.0, 0), "2");
}

TEST(BenchArgs, ParsesAllFlags) {
  const char* argv[] = {"prog", "--n",     "1000", "--m",      "4000",
                        "--nodes", "8",    "--threads", "2",
                        "--tprime", "16",  "--seed",    "7",
                        "--scale",  "2.5", "--csv"};
  const auto a =
      h::BenchArgs::parse(static_cast<int>(std::size(argv)),
                          const_cast<char**>(argv));
  EXPECT_EQ(a.n, 1000u);
  EXPECT_EQ(a.m, 4000u);
  EXPECT_EQ(a.nodes, 8);
  EXPECT_EQ(a.threads, 2);
  EXPECT_EQ(a.tprime, 16);
  EXPECT_EQ(a.seed, 7u);
  EXPECT_DOUBLE_EQ(a.scale, 2.5);
  EXPECT_TRUE(a.csv);
  EXPECT_EQ(a.scaled(100), 250u);
}

TEST(BenchArgs, Defaults) {
  const char* argv[] = {"prog"};
  const auto a = h::BenchArgs::parse(1, const_cast<char**>(argv));
  EXPECT_EQ(a.n, 0u);
  EXPECT_EQ(a.nodes, 0);
  EXPECT_DOUBLE_EQ(a.scale, 1.0);
  EXPECT_FALSE(a.csv);
  EXPECT_EQ(a.scaled(64), 64u);
}

namespace {

/// try_parse against an argv literal; returns the error string ("" = ok).
template <std::size_t N>
std::string tparse(const char* (&argv)[N], h::BenchArgs& out,
                   h::BenchCaps caps = {}) {
  return h::BenchArgs::try_parse(static_cast<int>(N),
                                 const_cast<char**>(argv), out, caps);
}

}  // namespace

TEST(BenchArgsStream, AcceptedWithCapability) {
  const char* argv[] = {"prog",         "--stream", "--batch-size", "128",
                        "--query-mix",  "0.25"};
  h::BenchArgs a;
  ASSERT_EQ(tparse(argv, a, {.stream = true}), "");
  EXPECT_TRUE(a.stream);
  EXPECT_EQ(a.batch_size, 128u);
  EXPECT_DOUBLE_EQ(a.query_mix, 0.25);
}

TEST(BenchArgsStream, RejectedOnBatchBenches) {
  // A bench without the streaming capability must refuse the flags with a
  // clear message instead of silently ignoring them.
  const char* s1[] = {"prog", "--stream"};
  const char* s2[] = {"prog", "--batch-size", "64"};
  const char* s3[] = {"prog", "--query-mix", "0.5"};
  h::BenchArgs a;
  EXPECT_NE(tparse(s1, a).find("--stream"), std::string::npos);
  EXPECT_NE(tparse(s2, a).find("--batch-size"), std::string::npos);
  EXPECT_NE(tparse(s3, a).find("--query-mix"), std::string::npos);
}

TEST(BenchArgsStream, StreamFlagsRequireStream) {
  const char* s1[] = {"prog", "--batch-size", "64"};
  const char* s2[] = {"prog", "--query-mix", "0.5"};
  h::BenchArgs a;
  EXPECT_NE(tparse(s1, a, {.stream = true}).find("requires --stream"),
            std::string::npos);
  EXPECT_NE(tparse(s2, a, {.stream = true}).find("requires --stream"),
            std::string::npos);
}

TEST(BenchArgsStream, BatchSizeZeroAndBadMixRejected) {
  const char* s1[] = {"prog", "--stream", "--batch-size", "0"};
  const char* s2[] = {"prog", "--stream", "--query-mix", "1.5"};
  const char* s3[] = {"prog", "--stream", "--query-mix", "-0.1"};
  h::BenchArgs a;
  EXPECT_NE(tparse(s1, a, {.stream = true}).find("--batch-size"),
            std::string::npos);
  EXPECT_NE(tparse(s2, a, {.stream = true}).find("--query-mix"),
            std::string::npos);
  EXPECT_NE(tparse(s3, a, {.stream = true}).find("--query-mix"),
            std::string::npos);
}

TEST(BenchArgsStream, TryParseReportsUnknownFlagWithoutExit) {
  const char* argv[] = {"prog", "--bogus"};
  h::BenchArgs a;
  const std::string err = tparse(argv, a);
  EXPECT_NE(err.find("--bogus"), std::string::npos);
  const char* ok[] = {"prog", "--n", "10"};
  EXPECT_EQ(tparse(ok, a), "");
  EXPECT_EQ(a.n, 10u);
}

TEST(BenchArgsServe, AcceptedWithCapability) {
  const char* argv[] = {"prog",   "--sessions",        "8",
                        "--arrival-rate", "250000",    "--skew",
                        "1.2",    "--batch-window-ns", "4000"};
  h::BenchArgs a;
  ASSERT_EQ(tparse(argv, a, {.serve = true}), "");
  EXPECT_EQ(a.sessions, 8);
  EXPECT_DOUBLE_EQ(a.arrival_rate, 250000.0);
  EXPECT_DOUBLE_EQ(a.skew, 1.2);
  EXPECT_DOUBLE_EQ(a.batch_window_ns, 4000.0);
}

TEST(BenchArgsServe, DefaultsMeanBenchChooses) {
  const char* argv[] = {"prog", "--n", "100"};
  h::BenchArgs a;
  ASSERT_EQ(tparse(argv, a, {.serve = true}), "");
  EXPECT_EQ(a.sessions, 0);
  EXPECT_DOUBLE_EQ(a.arrival_rate, 0.0);
  EXPECT_LT(a.skew, 0.0);
  EXPECT_LT(a.batch_window_ns, 0.0);
}

TEST(BenchArgsServe, RejectedOnNonServingBenches) {
  // A bench without the serving capability must refuse the flags with a
  // clear message instead of silently ignoring them.
  const char* s1[] = {"prog", "--sessions", "4"};
  const char* s2[] = {"prog", "--arrival-rate", "1e6"};
  const char* s3[] = {"prog", "--skew", "0.8"};
  const char* s4[] = {"prog", "--batch-window-ns", "2000"};
  h::BenchArgs a;
  EXPECT_NE(tparse(s1, a).find("--sessions"), std::string::npos);
  EXPECT_NE(tparse(s2, a).find("--arrival-rate"), std::string::npos);
  EXPECT_NE(tparse(s3, a).find("--skew"), std::string::npos);
  EXPECT_NE(tparse(s4, a).find("--batch-window-ns"), std::string::npos);
  // Stream capability alone does not grant the serving flags.
  EXPECT_NE(tparse(s1, a, {.stream = true}).find("not supported"),
            std::string::npos);
}

TEST(BenchArgsServe, OutOfRangeValuesRejected) {
  const char* s1[] = {"prog", "--sessions", "0"};
  const char* s2[] = {"prog", "--arrival-rate", "0"};
  const char* s3[] = {"prog", "--skew", "-0.5"};
  const char* s4[] = {"prog", "--batch-window-ns", "-1"};
  h::BenchArgs a;
  EXPECT_NE(tparse(s1, a, {.serve = true}).find("--sessions"),
            std::string::npos);
  EXPECT_NE(tparse(s2, a, {.serve = true}).find("--arrival-rate"),
            std::string::npos);
  EXPECT_NE(tparse(s3, a, {.serve = true}).find("--skew"),
            std::string::npos);
  EXPECT_NE(tparse(s4, a, {.serve = true}).find("--batch-window-ns"),
            std::string::npos);
}

TEST(BenchArgsResilience, AcceptedWithCapability) {
  const char* argv[] = {"prog",           "--deadline-ns", "250000",
                        "--retry-budget", "3",             "--brownout",
                        "1"};
  h::BenchArgs a;
  ASSERT_EQ(tparse(argv, a, {.serve = true}), "");
  EXPECT_DOUBLE_EQ(a.deadline_ns, 250000.0);
  EXPECT_DOUBLE_EQ(a.retry_budget, 3.0);
  EXPECT_EQ(a.brownout, 1);
}

TEST(BenchArgsResilience, DefaultsMeanBenchChooses) {
  const char* argv[] = {"prog", "--n", "100"};
  h::BenchArgs a;
  ASSERT_EQ(tparse(argv, a, {.serve = true}), "");
  EXPECT_DOUBLE_EQ(a.deadline_ns, 0.0);
  EXPECT_LT(a.retry_budget, 0.0);
  EXPECT_EQ(a.brownout, -1);
}

TEST(BenchArgsResilience, RejectedOnNonServingBenches) {
  const char* s1[] = {"prog", "--deadline-ns", "250000"};
  const char* s2[] = {"prog", "--retry-budget", "3"};
  const char* s3[] = {"prog", "--brownout", "1"};
  h::BenchArgs a;
  EXPECT_NE(tparse(s1, a).find("--deadline-ns"), std::string::npos);
  EXPECT_NE(tparse(s2, a).find("--retry-budget"), std::string::npos);
  EXPECT_NE(tparse(s3, a).find("--brownout"), std::string::npos);
}

TEST(BenchArgsResilience, OutOfRangeValuesRejected) {
  const char* s1[] = {"prog", "--deadline-ns", "0"};
  const char* s2[] = {"prog", "--deadline-ns", "-5"};
  const char* s3[] = {"prog", "--retry-budget", "-1"};
  const char* s4[] = {"prog", "--brownout", "2"};
  h::BenchArgs a;
  EXPECT_NE(tparse(s1, a, {.serve = true}).find("--deadline-ns"),
            std::string::npos);
  EXPECT_NE(tparse(s2, a, {.serve = true}).find("--deadline-ns"),
            std::string::npos);
  EXPECT_NE(tparse(s3, a, {.serve = true}).find("--retry-budget"),
            std::string::npos);
  EXPECT_NE(tparse(s4, a, {.serve = true}).find("--brownout"),
            std::string::npos);
}

TEST(BenchArgsResilience, NanAndInfRejectedEverywhere) {
  // NaN compares false against everything, so naive `x < 0` range checks
  // silently accept it; the parser phrases acceptance positively.  Same
  // for infinities, which would otherwise flow into horizon arithmetic.
  const char* s1[] = {"prog", "--arrival-rate", "nan"};
  const char* s2[] = {"prog", "--skew", "nan"};
  const char* s3[] = {"prog", "--batch-window-ns", "inf"};
  const char* s4[] = {"prog", "--deadline-ns", "nan"};
  const char* s5[] = {"prog", "--retry-budget", "inf"};
  h::BenchArgs a;
  EXPECT_NE(tparse(s1, a, {.serve = true}).find("--arrival-rate"),
            std::string::npos);
  EXPECT_NE(tparse(s2, a, {.serve = true}).find("--skew"),
            std::string::npos);
  EXPECT_NE(tparse(s3, a, {.serve = true}).find("--batch-window-ns"),
            std::string::npos);
  EXPECT_NE(tparse(s4, a, {.serve = true}).find("--deadline-ns"),
            std::string::npos);
  EXPECT_NE(tparse(s5, a, {.serve = true}).find("--retry-budget"),
            std::string::npos);
}

TEST(BenchArgsRobust, AcceptedWithCapability) {
  const char* argv[] = {"prog",      "--scrub-interval", "4",
                        "--certify", "1",                "--mem-flips",
                        "3"};
  h::BenchArgs a;
  ASSERT_EQ(tparse(argv, a, {.robust = true}), "");
  EXPECT_EQ(a.scrub_interval, 4);
  EXPECT_EQ(a.certify, 1);
  EXPECT_EQ(a.mem_flips, 3);
}

TEST(BenchArgsRobust, DefaultsMeanBenchChooses) {
  const char* argv[] = {"prog", "--n", "64"};
  h::BenchArgs a;
  ASSERT_EQ(tparse(argv, a, {.robust = true}), "");
  EXPECT_EQ(a.scrub_interval, -1);
  EXPECT_EQ(a.certify, -1);
  EXPECT_EQ(a.mem_flips, -1);
}

TEST(BenchArgsRobust, RejectedOnNonRobustBenches) {
  // Same policy as the streaming/serving flags: refuse loudly, with the
  // offending flag in the message, instead of silently ignoring it.
  const char* s1[] = {"prog", "--scrub-interval", "2"};
  const char* s2[] = {"prog", "--certify", "1"};
  const char* s3[] = {"prog", "--mem-flips", "1"};
  h::BenchArgs a;
  EXPECT_NE(tparse(s1, a).find("--scrub-interval"), std::string::npos);
  EXPECT_NE(tparse(s2, a).find("--certify"), std::string::npos);
  EXPECT_NE(tparse(s3, a).find("--mem-flips"), std::string::npos);
}

TEST(BenchArgsRobust, OutOfRangeValuesRejected) {
  const char* s1[] = {"prog", "--scrub-interval", "-1"};
  const char* s2[] = {"prog", "--certify", "2"};
  const char* s3[] = {"prog", "--certify", "-1"};
  const char* s4[] = {"prog", "--mem-flips", "-5"};
  h::BenchArgs a;
  EXPECT_NE(tparse(s1, a, {.robust = true}).find("--scrub-interval"),
            std::string::npos);
  EXPECT_NE(tparse(s2, a, {.robust = true}).find("--certify"),
            std::string::npos);
  EXPECT_NE(tparse(s3, a, {.robust = true}).find("--certify"),
            std::string::npos);
  EXPECT_NE(tparse(s4, a, {.robust = true}).find("--mem-flips"),
            std::string::npos);
}

TEST(BenchArgsRobust, ZeroMeansOffAndIsAccepted) {
  // 0 is the documented "off" value for all three knobs, distinct from
  // the -1 bench-default sentinel.
  const char* argv[] = {"prog",      "--scrub-interval", "0",
                        "--certify", "0",                "--mem-flips",
                        "0"};
  h::BenchArgs a;
  ASSERT_EQ(tparse(argv, a, {.robust = true}), "");
  EXPECT_EQ(a.scrub_interval, 0);
  EXPECT_EQ(a.certify, 0);
  EXPECT_EQ(a.mem_flips, 0);
}

TEST(BenchArgsPartition, AcceptedWithCapability) {
  for (const char* scheme :
       {"block", "cyclic", "block_cyclic:16", "degree"}) {
    const char* argv[] = {"prog", "--partition", scheme};
    h::BenchArgs a;
    ASSERT_EQ(tparse(argv, a, {.partition = true}), "") << scheme;
    EXPECT_EQ(a.partition, scheme);
  }
}

TEST(BenchArgsPartition, DefaultMeansBlock) {
  const char* argv[] = {"prog", "--n", "64"};
  h::BenchArgs a;
  ASSERT_EQ(tparse(argv, a, {.partition = true}), "");
  EXPECT_TRUE(a.partition.empty());
}

TEST(BenchArgsPartition, RejectedOnBlockOnlyBenches) {
  // Benches whose arrays are hard-wired to the block layout refuse the
  // flag loudly instead of silently running under the wrong assumption.
  const char* s1[] = {"prog", "--partition", "cyclic"};
  h::BenchArgs a;
  EXPECT_NE(tparse(s1, a).find("--partition"), std::string::npos);
  // Other capabilities do not grant it.
  EXPECT_NE(tparse(s1, a, {.stream = true}).find("--partition"),
            std::string::npos);
  EXPECT_NE(tparse(s1, a, {.robust = true}).find("--partition"),
            std::string::npos);
}

TEST(BenchArgsPartition, BadSchemesRejectedAtParseTime) {
  // Unknown schemes and zero / negative / fractional / NaN chunks fail in
  // try_parse, not mid-run; NaN must not slip through a comparison (the
  // accept condition is phrased positively).
  for (const char* bad :
       {"zigzag", "block_cyclic", "block_cyclic:", "block_cyclic:0",
        "block_cyclic:-4", "block_cyclic:1.5", "block_cyclic:nan",
        "block_cyclic:inf"}) {
    const char* argv[] = {"prog", "--partition", bad};
    h::BenchArgs a;
    EXPECT_NE(tparse(argv, a, {.partition = true}).find("--partition"),
              std::string::npos)
        << "'" << bad << "' was accepted";
  }
}
