// List ranking: Wyllie-with-collectives and the contract-to-one-node
// baseline against the sequential chase.
#include <gtest/gtest.h>

#include "core/list_ranking.hpp"

namespace core = pgraph::core;
namespace pg = pgraph::pgas;
namespace m = pgraph::machine;

TEST(MakeRandomList, SingleChainCoversAllElements) {
  std::uint64_t head = 0;
  const auto succ = core::make_random_list(100, 5, &head);
  ASSERT_EQ(succ.size(), 100u);
  // Walk from the head: must visit every element exactly once.
  std::vector<bool> seen(100, false);
  std::uint64_t cur = head;
  std::size_t steps = 0;
  for (;;) {
    ASSERT_FALSE(seen[cur]);
    seen[cur] = true;
    ++steps;
    if (succ[cur] == cur) break;
    cur = succ[cur];
  }
  EXPECT_EQ(steps, 100u);
}

TEST(MakeRandomList, Deterministic) {
  EXPECT_EQ(core::make_random_list(500, 3), core::make_random_list(500, 3));
  EXPECT_NE(core::make_random_list(500, 3), core::make_random_list(500, 4));
}

TEST(RankSequential, SingleList) {
  std::uint64_t head = 0;
  const auto succ = core::make_random_list(64, 1, &head);
  const auto ranks = core::rank_sequential(succ);
  EXPECT_EQ(ranks[head], 63u);
  // The tail has rank 0, and ranks along the chain decrease by 1.
  std::uint64_t cur = head;
  std::uint64_t expect = 63;
  while (succ[cur] != cur) {
    EXPECT_EQ(ranks[cur], expect--);
    cur = succ[cur];
  }
  EXPECT_EQ(ranks[cur], 0u);
}

TEST(RankSequential, MultipleListsAndSingletons) {
  // Two chains: 0->1->2 (tail 2), 3 alone, 4->5 (tail 5).
  const std::vector<std::uint64_t> succ = {1, 2, 2, 3, 5, 5};
  const auto ranks = core::rank_sequential(succ);
  EXPECT_EQ(ranks, (std::vector<std::uint64_t>{2, 1, 0, 0, 1, 0}));
}

class ListRankP
    : public ::testing::TestWithParam<std::tuple<int, int, std::size_t>> {};

TEST_P(ListRankP, PgasMatchesSequential) {
  const auto [nodes, threads, n] = GetParam();
  const auto succ = core::make_random_list(n, 7);
  const auto expect = core::rank_sequential(succ);
  pg::Runtime rt(pg::Topology::cluster(nodes, threads),
                 m::CostParams::hps_cluster());
  const auto got = core::list_ranking_pgas(rt, succ);
  EXPECT_EQ(got.ranks, expect);
  // Wyllie: ~log2(n) rounds.
  EXPECT_LE(got.rounds, 2 * 64);
  EXPECT_GT(got.costs.modeled_ns, 0.0);
}

TEST_P(ListRankP, ContractMatchesSequential) {
  const auto [nodes, threads, n] = GetParam();
  const auto succ = core::make_random_list(n, 8);
  const auto expect = core::rank_sequential(succ);
  pg::Runtime rt(pg::Topology::cluster(nodes, threads),
                 m::CostParams::hps_cluster());
  const auto got = core::list_ranking_contract(rt, succ);
  EXPECT_EQ(got.ranks, expect);
  EXPECT_EQ(got.rounds, 2);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ListRankP,
    ::testing::Values(std::tuple{1, 1, 256u}, std::tuple{1, 4, 1000u},
                      std::tuple{2, 2, 1000u}, std::tuple{4, 2, 5000u},
                      std::tuple{4, 1, 37u}));

TEST(ListRanking, PgasLogRoundsVsContractTwoRounds) {
  // The paper's claim is about inputs much larger than the cache ("as n/p
  // can be large when n >> p, the performance gain from reduced
  // communication rounds may be offset by poor cache performance in the
  // sequential processing step") — scale the modeled cache with n the way
  // the benches do.
  const std::size_t n = 1 << 18;
  m::CostParams p = m::CostParams::hps_cluster();
  p.cache_bytes = n * 8 / 420;
  const auto succ = core::make_random_list(n, 9);

  const auto run_both = [&](int nodes, int threads) {
    pg::Runtime rt1(pg::Topology::cluster(nodes, threads), p);
    const auto wy = core::list_ranking_pgas(rt1, succ);
    pg::Runtime rt2(pg::Topology::cluster(nodes, threads), p);
    const auto ct = core::list_ranking_contract(rt2, succ);
    EXPECT_EQ(wy.ranks, ct.ranks);
    EXPECT_GT(wy.rounds, 14);  // ~log2(256K) = 18
    EXPECT_EQ(ct.rounds, 2);
    return std::pair{wy.costs.modeled_ns, ct.costs.modeled_ns};
  };

  // The paper's point is about *scaling*: the contract variant's
  // sequential chase ("all but one processor remain idle") gains nothing
  // from more processors, while the coordinated Wyllie keeps improving —
  // despite running 9x more communication rounds.
  const auto [wy4, ct4] = run_both(4, 1);
  const auto [wy16, ct16] = run_both(16, 1);
  EXPECT_LT(wy16, 0.55 * wy4);  // the coordinated approach scales
  EXPECT_GT(ct16, 0.85 * ct4);  // the contraction's sequential step doesn't
  // Despite Wyllie's O(n log n) work handicap and 9x more communication
  // rounds, the scaling brings it to parity with the round-optimal
  // contraction at p=16 (for CC, where the coordinated algorithm is
  // work-efficient, it wins outright — see bench/abl01).
  EXPECT_LT(wy16, 1.6 * ct16);
}

TEST(ListRanking, EmptyAndTinyLists) {
  pg::Runtime rt(pg::Topology::cluster(2, 1), m::CostParams::hps_cluster());
  const std::vector<std::uint64_t> one = {0};
  EXPECT_EQ(core::list_ranking_pgas(rt, one).ranks,
            (std::vector<std::uint64_t>{0}));
  const std::vector<std::uint64_t> two = {1, 1};
  EXPECT_EQ(core::list_ranking_pgas(rt, two).ranks,
            (std::vector<std::uint64_t>{1, 0}));
}
