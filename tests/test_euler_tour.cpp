// Euler-tour technique: tour construction invariants and the distributed
// (list-ranking-powered) tree metrics against sequential DFS — including
// the full pipeline spanning_tree -> euler tour -> metrics.
#include <gtest/gtest.h>

#include "core/cc_seq.hpp"
#include "core/euler_tour.hpp"
#include "core/mst_pgas.hpp"
#include "graph/generators.hpp"
#include "graph/permute.hpp"
#include "graph/rng.hpp"

namespace core = pgraph::core;
namespace g = pgraph::graph;
namespace pg = pgraph::pgas;
namespace m = pgraph::machine;

namespace {

pg::Runtime cluster() {
  return pg::Runtime(pg::Topology::cluster(2, 2),
                     m::CostParams::hps_cluster());
}

/// A deterministic random tree: vertex i>0 attaches to a random earlier
/// vertex, then the whole tree is relabeled to kill index structure.
g::EdgeList random_tree(std::size_t n, std::uint64_t seed) {
  g::EdgeList el;
  el.n = n;
  g::Xoshiro256 rng(seed);
  for (std::size_t i = 1; i < n; ++i)
    el.edges.push_back({rng.next_below(i), i});
  const auto perm = g::random_permutation(n, seed + 1);
  return g::relabel(el, perm);
}

void expect_metrics_equal(const core::TreeMetrics& got,
                          const core::TreeMetrics& want, std::size_t n) {
  for (std::size_t v = 0; v < n; ++v) {
    EXPECT_EQ(got.depth[v], want.depth[v]) << "depth of " << v;
    EXPECT_EQ(got.subtree_size[v], want.subtree_size[v])
        << "subtree of " << v;
    EXPECT_EQ(got.parent[v], want.parent[v]) << "parent of " << v;
  }
}

/// The property Tarjan-Vishkin builds on: within each component, preorder
/// is a bijection to [0, comp size) and subtree(v) is the contiguous
/// interval [pre(v), pre(v) + size(v)).
void expect_preorder_intervals(const core::TreeMetrics& m, std::size_t n) {
  for (std::size_t v = 0; v < n; ++v) {
    ASSERT_NE(m.preorder[v], UINT64_MAX) << v;
    if (m.parent[v] == v) continue;  // component root
    const auto p = m.parent[v];
    // Child interval nested in parent interval, strictly after its start.
    EXPECT_GT(m.preorder[v], m.preorder[p]);
    EXPECT_LE(m.preorder[v] + m.subtree_size[v],
              m.preorder[p] + m.subtree_size[p]);
    EXPECT_EQ(m.depth[v], m.depth[p] + 1);
  }
}

}  // namespace

TEST(EulerTour, TourIsAPermutationCoveringAllArcs) {
  const auto tree = random_tree(64, 3);
  const auto t = core::build_euler_tour(tree, 0);
  ASSERT_EQ(t.arcs(), 2 * tree.m());
  // Walk from the root's first arc: must visit every arc exactly once.
  std::vector<bool> seen(t.arcs(), false);
  std::uint64_t a = t.first_arc[t.root];
  std::size_t count = 0;
  for (;;) {
    ASSERT_FALSE(seen[a]);
    seen[a] = true;
    ++count;
    if (t.succ[a] == a) break;
    a = t.succ[a];
  }
  EXPECT_EQ(count, t.arcs());
  // Consecutive arcs share a vertex (it is a walk).
  a = t.first_arc[t.root];
  while (t.succ[a] != a) {
    EXPECT_EQ(t.arc_to[a], t.arc_from[t.succ[a]]);
    a = t.succ[a];
  }
  // It starts and ends at the root.
  EXPECT_EQ(t.arc_from[t.first_arc[t.root]], t.root);
  EXPECT_EQ(t.arc_to[a], t.root);
}

TEST(EulerTour, RejectsCycles) {
  EXPECT_THROW(core::build_euler_tour(g::cycle_graph(5), 0),
               std::invalid_argument);
}

TEST(EulerTour, MetricsPathTree) {
  auto rt = cluster();
  const auto tree = g::path_graph(20);
  const auto t = core::build_euler_tour(tree, 0);
  const auto got = core::euler_tour_metrics(rt, t);
  for (std::size_t v = 0; v < 20; ++v) {
    EXPECT_EQ(got.depth[v], v);
    EXPECT_EQ(got.subtree_size[v], 20 - v);
    EXPECT_EQ(got.parent[v], v == 0 ? 0u : v - 1);
  }
}

TEST(EulerTour, MetricsStarTree) {
  auto rt = cluster();
  const auto tree = g::star_graph(30);
  const auto t = core::build_euler_tour(tree, 0);
  const auto got = core::euler_tour_metrics(rt, t);
  EXPECT_EQ(got.subtree_size[0], 30u);
  for (std::size_t v = 1; v < 30; ++v) {
    EXPECT_EQ(got.depth[v], 1u);
    EXPECT_EQ(got.subtree_size[v], 1u);
    EXPECT_EQ(got.parent[v], 0u);
  }
}

class EulerTourP
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(EulerTourP, MetricsMatchSequentialDfs) {
  const auto [n, seed] = GetParam();
  const auto tree = random_tree(n, seed);
  // Root somewhere arbitrary, not 0 (relabeled anyway).
  const std::uint64_t root = seed % n;
  const auto t = core::build_euler_tour(tree, root);
  auto rt = cluster();
  const auto got = core::euler_tour_metrics(rt, t);
  const auto want = core::tree_metrics_sequential(tree, root);
  expect_metrics_equal(got, want, n);
  expect_preorder_intervals(got, n);
  expect_preorder_intervals(want, n);
  EXPECT_GT(got.costs.modeled_ns, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EulerTourP,
                         ::testing::Values(std::tuple{2u, 1u},
                                           std::tuple{17u, 2u},
                                           std::tuple{100u, 3u},
                                           std::tuple{500u, 4u},
                                           std::tuple{2000u, 5u}));

TEST(EulerTour, ForestToursEveryComponent) {
  // Two trees (paths 0-1-2 and 3-4) plus an isolated vertex 5.
  g::EdgeList forest;
  forest.n = 6;
  forest.edges = {{0, 1}, {1, 2}, {3, 4}};
  const auto t = core::build_euler_tour(forest, 0);
  EXPECT_EQ(t.comp_roots.size(), 3u);
  auto rt = cluster();
  const auto got = core::euler_tour_metrics(rt, t);
  EXPECT_EQ(got.depth[2], 2u);
  EXPECT_EQ(got.subtree_size[0], 3u);
  // The second component is rooted at its minimum vertex.
  EXPECT_EQ(got.depth[3], 0u);
  EXPECT_EQ(got.parent[3], 3u);
  EXPECT_EQ(got.depth[4], 1u);
  EXPECT_EQ(got.subtree_size[3], 2u);
  // Isolated vertex: a degenerate root.
  EXPECT_EQ(got.depth[5], 0u);
  EXPECT_EQ(got.subtree_size[5], 1u);
  expect_preorder_intervals(got, 6);
}

TEST(EulerTour, FullPipelineFromSpanningTree) {
  // graph -> spanning_tree_pgas -> euler tour -> metrics; depths must
  // equal a DFS over the same spanning tree, and subtree sizes of the
  // root must equal its component size.
  const auto el = g::random_graph(600, 1800, 9);
  auto rt = cluster();
  const auto st = core::spanning_tree_pgas(rt, el);
  g::EdgeList tree;
  tree.n = el.n;
  for (const auto id : st.edges)
    tree.edges.push_back(el.edges[id]);
  const auto cc = core::cc_dsu(el);

  const std::uint64_t root = 0;
  const auto t = core::build_euler_tour(tree, root);
  const auto got = core::euler_tour_metrics(rt, t);
  const auto want = core::tree_metrics_sequential(tree, root);
  expect_metrics_equal(got, want, el.n);

  std::size_t comp_size = 0;
  for (std::size_t v = 0; v < el.n; ++v)
    if (cc.labels[v] == cc.labels[root]) ++comp_size;
  EXPECT_EQ(got.subtree_size[root], comp_size);
}

TEST(EulerTour, IsolatedRoot) {
  g::EdgeList forest;
  forest.n = 3;
  forest.edges = {{1, 2}};
  const auto t = core::build_euler_tour(forest, 0);
  auto rt = cluster();
  const auto got = core::euler_tour_metrics(rt, t);
  EXPECT_EQ(got.depth[0], 0u);
  EXPECT_EQ(got.subtree_size[0], 1u);
  EXPECT_EQ(got.parent[0], 0u);
  EXPECT_EQ(got.preorder[0], 0u);
  // The other component still gets metrics (rooted at 1).
  EXPECT_EQ(got.subtree_size[1], 2u);
}

TEST(EulerTour, PreorderMatchesTourOrderOnAPath) {
  const auto tree = g::path_graph(10);
  const auto t = core::build_euler_tour(tree, 0);
  auto rt = cluster();
  const auto got = core::euler_tour_metrics(rt, t);
  for (std::size_t v = 0; v < 10; ++v) EXPECT_EQ(got.preorder[v], v);
}
