// CSR, I/O, edge chunking.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace g = pgraph::graph;

TEST(Csr, AdjacencyBothDirections) {
  g::EdgeList el;
  el.n = 4;
  el.edges = {{0, 1}, {1, 2}, {1, 3}};
  const g::Csr csr(el);
  EXPECT_EQ(csr.n(), 4u);
  EXPECT_EQ(csr.directed_edges(), 6u);
  EXPECT_EQ(csr.degree(1), 3u);
  EXPECT_EQ(csr.degree(0), 1u);
  const auto n1 = csr.neighbors(1);
  EXPECT_EQ(std::count(n1.begin(), n1.end(), 0u), 1);
  EXPECT_EQ(std::count(n1.begin(), n1.end(), 2u), 1);
  EXPECT_EQ(std::count(n1.begin(), n1.end(), 3u), 1);
}

TEST(Csr, WeightedParallelArrays) {
  g::WEdgeList el;
  el.n = 3;
  el.edges = {{0, 1, 10}, {1, 2, 20}};
  const g::Csr csr(el);
  const auto nb = csr.neighbors(1);
  const auto w = csr.weights(1);
  ASSERT_EQ(nb.size(), 2u);
  ASSERT_EQ(w.size(), 2u);
  for (std::size_t i = 0; i < nb.size(); ++i)
    EXPECT_EQ(w[i], nb[i] == 0 ? 10u : 20u);
}

TEST(Csr, UnweightedHasEmptyWeights) {
  const g::Csr csr(g::path_graph(5));
  EXPECT_TRUE(csr.weights(0).empty());
}

TEST(EdgeChunk, CoversExactlyOnce) {
  const auto el = g::random_graph(100, 333, 1);
  for (const int parts : {1, 2, 3, 7, 16, 333, 500}) {
    std::size_t total = 0;
    std::size_t prev_hi = 0;
    for (int p = 0; p < parts; ++p) {
      const auto [lo, hi] = g::even_chunk(el.m(), parts, p);
      EXPECT_EQ(lo, prev_hi);
      EXPECT_LE(hi - lo, el.m() / static_cast<std::size_t>(parts) + 1);
      total += hi - lo;
      prev_hi = hi;
    }
    EXPECT_EQ(total, el.m()) << parts;
    EXPECT_EQ(prev_hi, el.m());
  }
}

TEST(Io, DimacsRoundTripUnweighted) {
  const auto el = g::random_graph(50, 120, 2);
  std::stringstream ss;
  g::write_dimacs(ss, el);
  const auto back = g::read_dimacs(ss);
  EXPECT_EQ(back.n, el.n);
  EXPECT_EQ(back.edges, el.edges);
}

TEST(Io, DimacsRoundTripWeighted) {
  const auto el = g::with_random_weights(g::random_graph(50, 120, 3), 4);
  std::stringstream ss;
  g::write_dimacs(ss, el);
  const auto back = g::read_dimacs_weighted(ss);
  EXPECT_EQ(back.n, el.n);
  EXPECT_EQ(back.edges, el.edges);
}

TEST(Io, DimacsRejectsMalformed) {
  {
    std::stringstream ss("e 1 2\n");
    EXPECT_THROW(g::read_dimacs(ss), std::runtime_error);
  }
  {
    std::stringstream ss("p edge 3 1\ne 1 9\n");
    EXPECT_THROW(g::read_dimacs(ss), std::runtime_error);  // id out of range
  }
  {
    std::stringstream ss("p edge 3 2\ne 1 2\n");
    EXPECT_THROW(g::read_dimacs(ss), std::runtime_error);  // count mismatch
  }
  {
    std::stringstream ss("p edge 3 1\nx 1 2\n");
    EXPECT_THROW(g::read_dimacs(ss), std::runtime_error);  // unknown kind
  }
}

TEST(Io, BinaryRoundTrip) {
  const auto el = g::with_random_weights(g::random_graph(80, 200, 5), 6);
  const std::string path =
      (std::filesystem::temp_directory_path() / "pgraph_io_test.bin")
          .string();
  g::write_binary(path, el);
  const auto back = g::read_binary(path);
  EXPECT_EQ(back.n, el.n);
  EXPECT_EQ(back.edges, el.edges);
  std::filesystem::remove(path);
}

TEST(Io, BinaryRejectsBadFile) {
  EXPECT_THROW(g::read_binary("/nonexistent/nope.bin"), std::runtime_error);
}
