// Trace-driven cache simulator tests, including the cross-validation of the
// analytic MemoryModel that DESIGN.md's substitution table promises.
#include <gtest/gtest.h>

#include <vector>

#include "graph/rng.hpp"
#include "machine/cache_sim.hpp"
#include "machine/cost_params.hpp"
#include "machine/memory_model.hpp"

namespace m = pgraph::machine;

TEST(CacheSim, RejectsBadGeometry) {
  EXPECT_THROW(m::CacheSim(1000, 64, 4), std::invalid_argument);  // not mult
  EXPECT_THROW(m::CacheSim(4096, 48, 4), std::invalid_argument);  // line !pow2
  EXPECT_THROW(m::CacheSim(4096, 64, 0), std::invalid_argument);
}

TEST(CacheSim, Geometry) {
  m::CacheSim c(8192, 64, 4);
  EXPECT_EQ(c.num_sets(), 8192u / (64 * 4));
  EXPECT_EQ(c.line_bytes(), 64u);
  EXPECT_EQ(c.associativity(), 4u);
}

TEST(CacheSim, SequentialReuseHits) {
  m::CacheSim c(4096, 64, 4);
  for (int rep = 0; rep < 3; ++rep)
    for (std::uint64_t a = 0; a < 4096; a += 8) c.access(a);
  // First pass misses once per line; later passes hit.
  EXPECT_EQ(c.misses(), 4096u / 64);
  EXPECT_EQ(c.accesses(), 3u * 512);
}

TEST(CacheSim, LruEvictsOldest) {
  // 1 set, 2 ways, 64B lines => addresses 0, 64, 128 conflict... they map
  // to different sets unless sets==1: size = 64*2 = 128 bytes.
  m::CacheSim c(128, 64, 2);
  ASSERT_EQ(c.num_sets(), 1u);
  c.access(0);      // miss, fills way 0
  c.access(64);     // miss, fills way 1
  c.access(0);      // hit, refreshes 0
  c.access(128);    // miss, evicts 64 (LRU)
  c.access(0);      // hit
  c.access(64);     // miss (was evicted)
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 4u);
}

TEST(CacheSim, WorkingSetBiggerThanCacheThrashes) {
  m::CacheSim c(4096, 64, 4);
  // Stream over 16x the capacity repeatedly: ~every access misses.
  for (int rep = 0; rep < 4; ++rep)
    for (std::uint64_t a = 0; a < 4096 * 16; a += 64) c.access(a);
  EXPECT_GT(c.miss_rate(), 0.99);
}

TEST(CacheSim, AccessRangeTouchesEachLineOnce) {
  m::CacheSim c(1 << 16, 64, 8);
  c.access_range(30, 1000);  // spans lines 0..16
  EXPECT_EQ(c.accesses(), (30 + 1000 - 1) / 64 - 30 / 64 + 1);
}

TEST(CacheSim, ResetClearsContents) {
  m::CacheSim c(4096, 64, 4);
  c.access(0);
  c.reset();
  EXPECT_EQ(c.accesses(), 0u);
  c.access(0);
  EXPECT_EQ(c.misses(), 1u);  // cold again
}

/// Validation: random accesses over a working set W through the simulator
/// should match the analytic miss fraction max(0, 1 - Z/W) within a
/// tolerance, for W >> Z and W << Z.
TEST(CacheSim, AnalyticModelMatchesSimulatedMissRate) {
  const std::size_t cache_bytes = 1 << 15;  // 32 KiB
  m::CostParams p = m::CostParams::hps_cluster();
  p.cache_bytes = cache_bytes;
  p.cache_line_bytes = 64;

  pgraph::graph::Xoshiro256 rng(7);
  for (const std::size_t ws_factor : {4u, 16u}) {
    const std::size_t ws = cache_bytes * ws_factor;
    m::CacheSim sim(cache_bytes, 64, 8);
    // Warm up, then measure.
    const int accesses = 200000;
    for (int i = 0; i < accesses / 4; ++i)
      sim.access(rng.next_below(ws) & ~7ull);
    sim.reset_counters();
    for (int i = 0; i < accesses; ++i)
      sim.access(rng.next_below(ws) & ~7ull);
    const double analytic =
        1.0 - static_cast<double>(cache_bytes) / static_cast<double>(ws);
    EXPECT_NEAR(sim.miss_rate(), analytic, 0.08)
        << "working set factor " << ws_factor;
  }
  // Cache-resident working set: almost everything hits after warmup.
  {
    m::CacheSim sim(cache_bytes, 64, 8);
    for (int i = 0; i < 100000; ++i)
      sim.access(rng.next_below(cache_bytes / 2) & ~7ull);
    sim.reset_counters();
    for (int i = 0; i < 100000; ++i)
      sim.access(rng.next_below(cache_bytes / 2) & ~7ull);
    EXPECT_LT(sim.miss_rate(), 0.01);
  }
}
