// Degree statistics / hygiene utilities, and the generator-shape claims
// the paper relies on (hybrid hubs, random concentration).
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/stats.hpp"

namespace g = pgraph::graph;

TEST(DegreeStats, KnownStructures) {
  const auto star = g::degree_stats(g::star_graph(10));
  EXPECT_EQ(star.max_degree, 9u);
  EXPECT_EQ(star.min_degree, 1u);
  EXPECT_DOUBLE_EQ(star.mean_degree, 18.0 / 10.0);
  EXPECT_EQ(star.isolated, 0u);

  const auto cyc = g::degree_stats(g::cycle_graph(8));
  EXPECT_EQ(cyc.max_degree, 2u);
  EXPECT_EQ(cyc.min_degree, 2u);
  EXPECT_DOUBLE_EQ(cyc.variance, 0.0);

  g::EdgeList iso;
  iso.n = 5;
  const auto s = g::degree_stats(iso);
  EXPECT_EQ(s.isolated, 5u);
  EXPECT_EQ(s.max_degree, 0u);
}

TEST(DegreeStats, HistogramPartitionsVertices) {
  const auto el = g::hybrid_graph(5000, 20000, 3);
  const auto s = g::degree_stats(el);
  std::size_t total = 0;
  for (const auto b : s.log2_histogram) total += b;
  EXPECT_EQ(total, el.n);
}

TEST(DegreeGini, OrdersFamiliesBySkew) {
  // Regular < random < scale-free-ish hybrid.
  EXPECT_NEAR(g::degree_gini(g::cycle_graph(1000)), 0.0, 1e-9);
  const double rnd = g::degree_gini(g::random_graph(4000, 16000, 1));
  const double hyb = g::degree_gini(g::hybrid_graph(4000, 16000, 1));
  const double star = g::degree_gini(g::star_graph(4000));
  EXPECT_GT(rnd, 0.05);
  EXPECT_LT(rnd, 0.45);
  EXPECT_GT(hyb, rnd);
  // Star: the hub holds exactly half the degree mass -> Gini ~ 0.5.
  EXPECT_NEAR(star, 0.5, 0.01);
  EXPECT_GT(star, hyb);
}

TEST(EdgeHygiene, CountsDuplicatesAndLoops) {
  g::EdgeList el;
  el.n = 4;
  el.edges = {{0, 1}, {1, 0}, {0, 1}, {2, 2}, {2, 3}};
  const auto h = g::edge_hygiene(el);
  EXPECT_EQ(h.distinct, 2u);    // {0,1}, {2,3}
  EXPECT_EQ(h.duplicates, 2u);  // the two repeats of {0,1}
  EXPECT_EQ(h.self_loops, 1u);
}

TEST(EdgeHygiene, GeneratorsAreClean) {
  for (const auto& el : {g::random_graph(2000, 8000, 2),
                         g::hybrid_graph(2000, 8000, 2)}) {
    const auto h = g::edge_hygiene(el);
    EXPECT_EQ(h.duplicates, 0u);
    EXPECT_EQ(h.self_loops, 0u);
    EXPECT_EQ(h.distinct, el.m());
  }
  // R-MAT without dedupe may produce duplicates, never self loops.
  const auto rmat = g::edge_hygiene(g::rmat_graph(1024, 8000, 2));
  EXPECT_EQ(rmat.self_loops, 0u);
}
