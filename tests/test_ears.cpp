// Ear decomposition (Maon-Schieber-Vishkin labels over the distributed
// substrate): known answers, structural decomposition invariants verified
// incrementally, and bridge cross-checks against biconnectivity.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/bcc.hpp"
#include "core/dsu.hpp"
#include "core/ears.hpp"
#include "graph/generators.hpp"
#include "graph/rng.hpp"

namespace core = pgraph::core;
namespace g = pgraph::graph;
namespace pg = pgraph::pgas;
namespace m = pgraph::machine;

namespace {

pg::Runtime cluster() {
  return pg::Runtime(pg::Topology::cluster(2, 2),
                     m::CostParams::hps_cluster());
}

/// Structural verification of a decomposition:
///  - ear ids are dense [0, num_ears);
///  - each ear's edge set forms a simple path or cycle;
///  - taken in id order, the first ear touching any set of fresh vertices
///    is a cycle, and every later ear attaches to previously-seen vertices
///    (path: both endpoints seen, internals fresh; cycle: >= 1 seen).
void verify_decomposition(const g::EdgeList& el, const core::EarResult& r) {
  ASSERT_EQ(r.ear.size(), el.m());
  // Group edges by ear.
  std::map<std::uint64_t, std::vector<std::size_t>> ears;
  std::uint64_t bridges = 0;
  for (std::size_t e = 0; e < el.m(); ++e) {
    if (r.ear[e] == core::kBridge) {
      ++bridges;
      continue;
    }
    ASSERT_LT(r.ear[e], r.num_ears);
    ears[r.ear[e]].push_back(e);
  }
  EXPECT_EQ(bridges, r.num_bridges);
  EXPECT_EQ(ears.size(), r.num_ears);

  std::set<std::uint64_t> seen;  // vertices on processed ears
  for (const auto& [id, edges] : ears) {
    // Degree profile of the ear's subgraph.
    std::map<std::uint64_t, int> deg;
    for (const auto e : edges) {
      ++deg[el.edges[e].u];
      ++deg[el.edges[e].v];
    }
    std::vector<std::uint64_t> endpoints;
    for (const auto& [v, d] : deg) {
      ASSERT_LE(d, 2) << "ear " << id << " is not a path/cycle";
      if (d == 1) endpoints.push_back(v);
    }
    ASSERT_TRUE(endpoints.size() == 2 || endpoints.empty())
        << "ear " << id;
    // Connectivity of the ear (walk it).
    {
      std::map<std::uint64_t, std::vector<std::uint64_t>> adj;
      for (const auto e : edges) {
        adj[el.edges[e].u].push_back(el.edges[e].v);
        adj[el.edges[e].v].push_back(el.edges[e].u);
      }
      std::set<std::uint64_t> vis;
      std::vector<std::uint64_t> stack = {deg.begin()->first};
      while (!stack.empty()) {
        const auto v = stack.back();
        stack.pop_back();
        if (!vis.insert(v).second) continue;
        for (const auto w : adj[v]) stack.push_back(w);
      }
      ASSERT_EQ(vis.size(), deg.size()) << "ear " << id << " disconnected";
    }
    // Attachment discipline.
    if (endpoints.size() == 2) {
      // Open ear: endpoints on earlier ears (unless this component's
      // decomposition is just starting, which only a cycle may do).
      EXPECT_TRUE(seen.count(endpoints[0])) << "ear " << id;
      EXPECT_TRUE(seen.count(endpoints[1])) << "ear " << id;
      for (const auto& [v, d] : deg) {
        if (d == 2) {
          EXPECT_FALSE(seen.count(v))
              << "ear " << id << " re-visits interior vertex " << v;
        }
      }
    } else {
      // Cycle: either opens a fresh 2-edge-connected component, or hangs
      // off exactly one articulation vertex of an earlier ear.
      int already = 0;
      for (const auto& [v, d] : deg) already += seen.count(v) ? 1 : 0;
      EXPECT_LE(already, 1) << "cycle ear " << id;
    }
    for (const auto& [v, d] : deg) seen.insert(v);
  }
}

}  // namespace

TEST(Ears, CycleIsOneEar) {
  auto rt = cluster();
  const auto r = core::ear_decomposition_pgas(rt, g::cycle_graph(9));
  EXPECT_EQ(r.num_ears, 1u);
  EXPECT_EQ(r.num_bridges, 0u);
  verify_decomposition(g::cycle_graph(9), r);
}

TEST(Ears, PathIsAllBridges) {
  auto rt = cluster();
  const auto r = core::ear_decomposition_pgas(rt, g::path_graph(8));
  EXPECT_EQ(r.num_ears, 0u);
  EXPECT_EQ(r.num_bridges, 7u);
}

TEST(Ears, CliqueCount) {
  // m - n + 1 ears for a connected bridgeless graph.
  const auto el = g::disjoint_cliques(1, 6);
  auto rt = cluster();
  const auto r = core::ear_decomposition_pgas(rt, el);
  EXPECT_EQ(r.num_ears, el.m() - el.n + 1);
  EXPECT_EQ(r.num_bridges, 0u);
  verify_decomposition(el, r);
}

TEST(Ears, ThetaGraph) {
  // Two hubs joined by three disjoint paths: 2 ears.
  g::EdgeList el;
  el.n = 5;  // hubs 0,4; middles 1,2,3
  el.edges = {{0, 1}, {1, 4}, {0, 2}, {2, 4}, {0, 3}, {3, 4}};
  auto rt = cluster();
  const auto r = core::ear_decomposition_pgas(rt, el);
  EXPECT_EQ(r.num_ears, 2u);
  EXPECT_EQ(r.num_bridges, 0u);
  verify_decomposition(el, r);
}

TEST(Ears, BowtieTwoCycleEars) {
  g::EdgeList el;
  el.n = 5;
  el.edges = {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}};
  auto rt = cluster();
  const auto r = core::ear_decomposition_pgas(rt, el);
  EXPECT_EQ(r.num_ears, 2u);
  EXPECT_EQ(r.num_bridges, 0u);
  verify_decomposition(el, r);
}

TEST(Ears, GridDecomposition) {
  const auto el = g::grid_graph(5, 6);
  auto rt = cluster();
  const auto r = core::ear_decomposition_pgas(rt, el);
  EXPECT_EQ(r.num_ears, el.m() - el.n + 1);
  EXPECT_EQ(r.num_bridges, 0u);
  verify_decomposition(el, r);
}

class EarsP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EarsP, RandomGraphsDecomposeAndMatchBccBridges) {
  const std::uint64_t seed = GetParam();
  g::Xoshiro256 rng(seed);
  auto rt = cluster();
  for (int round = 0; round < 2; ++round) {
    const std::size_t n = 30 + rng.next_below(300);
    const std::size_t mm = std::min(n * (n - 1) / 2,
                                    1 + rng.next_below(3 * n));
    const auto el = g::random_graph(n, mm, seed * 13 + round);
    const auto r = core::ear_decomposition_pgas(rt, el);
    verify_decomposition(el, r);
    // Cross-check: bridges are exactly the singleton blocks of the
    // biconnectivity decomposition.
    const auto bcc = core::bcc_sequential(el);
    std::map<std::uint64_t, int> block_size;
    for (const auto b : bcc.edge_block) ++block_size[b];
    for (std::size_t e = 0; e < el.m(); ++e) {
      const bool is_bridge = r.ear[e] == core::kBridge;
      EXPECT_EQ(is_bridge, block_size[bcc.edge_block[e]] == 1)
          << "edge " << e << " seed " << seed;
    }
    // Count: ears per connected component sum to m' - n' + c'.
    // (num_ears == #nontree edges of the spanning forest.)
    std::uint64_t tree_edges = 0;
    {
      core::Dsu d(el.n);
      for (const auto& e : el.edges)
        if (d.unite(e.u, e.v)) ++tree_edges;
    }
    EXPECT_EQ(r.num_ears, el.m() - tree_edges);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EarsP, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Ears, RejectsSelfLoops) {
  g::EdgeList el;
  el.n = 2;
  el.edges = {{0, 0}};
  auto rt = cluster();
  EXPECT_THROW(core::ear_decomposition_pgas(rt, el), std::invalid_argument);
}
