// Graph generators: the paper's random and hybrid families plus R-MAT and
// the structured helpers.
#include <gtest/gtest.h>

#include <unordered_set>

#include "graph/generators.hpp"
#include "graph/permute.hpp"
#include "graph/rng.hpp"

namespace g = pgraph::graph;

namespace {
std::uint64_t key(const g::Edge& e) {
  const auto u = std::min(e.u, e.v), v = std::max(e.u, e.v);
  return (u << 32) | v;
}
}  // namespace

TEST(Rng, Deterministic) {
  g::Xoshiro256 a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  bool differs = false;
  g::Xoshiro256 a2(123);
  for (int i = 0; i < 100; ++i) differs |= (a2.next() != c.next());
  EXPECT_TRUE(differs);
}

TEST(Rng, NextBelowInRange) {
  g::Xoshiro256 r(9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, NextBelowRoughlyUniform) {
  g::Xoshiro256 r(9);
  std::array<int, 8> hist{};
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++hist[r.next_below(8)];
  for (const int h : hist) EXPECT_NEAR(h, n / 8, n / 8 * 0.1);
}

TEST(RandomGraph, ExactEdgeCountUniqueNoSelfLoops) {
  const auto el = g::random_graph(1000, 5000, 1);
  EXPECT_EQ(el.n, 1000u);
  EXPECT_EQ(el.m(), 5000u);
  std::unordered_set<std::uint64_t> seen;
  for (const auto& e : el.edges) {
    EXPECT_NE(e.u, e.v);
    EXPECT_LT(e.u, 1000u);
    EXPECT_LT(e.v, 1000u);
    EXPECT_TRUE(seen.insert(key(e)).second) << "duplicate edge";
  }
}

TEST(RandomGraph, DeterministicAcrossCalls) {
  const auto a = g::random_graph(500, 2000, 77);
  const auto b = g::random_graph(500, 2000, 77);
  EXPECT_EQ(a.edges, b.edges);
  const auto c = g::random_graph(500, 2000, 78);
  EXPECT_NE(a.edges, c.edges);
}

TEST(RandomGraph, RejectsImpossibleDensity) {
  EXPECT_THROW(g::random_graph(4, 100, 1), std::invalid_argument);
  EXPECT_THROW(g::random_graph(1, 0, 1), std::invalid_argument);
}

TEST(RandomGraph, DenseNearCompleteStillTerminates) {
  const auto el = g::random_graph(32, 32 * 31 / 2, 5);  // complete graph
  EXPECT_EQ(el.m(), 32u * 31 / 2);
}

TEST(Rmat, PowerOfTwoRoundingAndCount) {
  const auto el = g::rmat_graph(1000, 4000, 3);
  EXPECT_EQ(el.n, 1024u);
  EXPECT_EQ(el.m(), 4000u);
  for (const auto& e : el.edges) {
    EXPECT_NE(e.u, e.v);
    EXPECT_LT(e.u, 1024u);
  }
}

TEST(Rmat, SkewProducesHubs) {
  const auto skewed = g::rmat_graph(4096, 40000, 11, {0.7, 0.1, 0.1, false});
  const auto uniform = g::random_graph(4096, 40000, 11);
  EXPECT_GT(g::max_degree(skewed), 2 * g::max_degree(uniform));
}

TEST(Hybrid, CountAndHubs) {
  const std::size_t n = 10000, m = 40000;
  const auto el = g::hybrid_graph(n, m, 21);
  EXPECT_EQ(el.n, n);
  EXPECT_EQ(el.m(), m);
  std::unordered_set<std::uint64_t> seen;
  for (const auto& e : el.edges) {
    EXPECT_NE(e.u, e.v);
    EXPECT_TRUE(seen.insert(key(e)).second);
  }
  // Scale-free core on 2*sqrt(n) vertices: hubs well above the random
  // graph's max degree (~ m/n + tail).
  EXPECT_GT(g::max_degree(el), 3 * g::max_degree(g::random_graph(n, m, 21)));
}

TEST(Hybrid, Deterministic) {
  EXPECT_EQ(g::hybrid_graph(2000, 8000, 5).edges,
            g::hybrid_graph(2000, 8000, 5).edges);
}

TEST(Weights, DeterministicAndBounded) {
  const auto el = g::random_graph(100, 300, 9);
  const auto wa = g::with_random_weights(el, 123);
  const auto wb = g::with_random_weights(el, 123);
  EXPECT_EQ(wa.edges, wb.edges);
  for (const auto& e : wa.edges) EXPECT_LT(e.w, 1ULL << 31);
  const auto wc = g::with_random_weights(el, 124);
  EXPECT_NE(wa.edges, wc.edges);
}

TEST(Structured, PathCycleStarGridCliques) {
  EXPECT_EQ(g::path_graph(5).m(), 4u);
  EXPECT_EQ(g::cycle_graph(5).m(), 5u);
  EXPECT_EQ(g::star_graph(5).m(), 4u);
  EXPECT_EQ(g::max_degree(g::star_graph(100)), 99u);
  const auto grid = g::grid_graph(3, 4);
  EXPECT_EQ(grid.n, 12u);
  EXPECT_EQ(grid.m(), 3u * 3 + 2 * 4);  // 9 horizontal + 8 vertical = 17
  const auto cl = g::disjoint_cliques(3, 4);
  EXPECT_EQ(cl.n, 12u);
  EXPECT_EQ(cl.m(), 3u * 6);
}

TEST(Structured, EmptyAndTinyGraphs) {
  EXPECT_EQ(g::path_graph(0).m(), 0u);
  EXPECT_EQ(g::path_graph(1).m(), 0u);
  EXPECT_EQ(g::cycle_graph(2).m(), 1u);  // no duplicate closing edge
}

TEST(Permute, IsPermutationAndDeterministic) {
  const auto p = g::random_permutation(1000, 3);
  EXPECT_TRUE(g::is_permutation_of_iota(p));
  EXPECT_EQ(p, g::random_permutation(1000, 3));
  EXPECT_NE(p, g::random_permutation(1000, 4));
}

TEST(Permute, RelabelPreservesStructure) {
  const auto el = g::random_graph(200, 600, 8);
  const auto p = g::random_permutation(200, 15);
  const auto rel = g::relabel(el, p);
  EXPECT_EQ(rel.m(), el.m());
  for (std::size_t i = 0; i < el.m(); ++i) {
    EXPECT_EQ(rel.edges[i].u, p[el.edges[i].u]);
    EXPECT_EQ(rel.edges[i].v, p[el.edges[i].v]);
  }
  EXPECT_EQ(g::max_degree(rel), g::max_degree(el));
}

TEST(TemporalStream, SameSeedSameStream) {
  g::TemporalStreamParams p;
  p.base_edges = 200;
  p.delete_frac = 0.3;
  const auto a = g::temporal_stream(100, 300, 42, p);
  const auto b = g::temporal_stream(100, 300, 42, p);
  EXPECT_EQ(a.base.edges, b.base.edges);
  EXPECT_EQ(a.updates, b.updates);
  const auto c = g::temporal_stream(100, 300, 43, p);
  EXPECT_NE(a.updates, c.updates);
}

TEST(TemporalStream, ReplayIsWellFormed) {
  // Timestamps strictly increase; every Erase names an edge that is live
  // at its timestamp; every Insert is a fresh non-loop edge.
  for (const auto base :
       {g::TemporalBase::Random, g::TemporalBase::Rmat, g::TemporalBase::Hybrid}) {
    g::TemporalStreamParams p;
    p.base = base;
    p.base_edges = 150;
    p.delete_frac = 0.4;
    const auto ts = g::temporal_stream(128, 250, 5, p);
    std::unordered_set<std::uint64_t> live;
    for (const auto& e : ts.base.edges) {
      EXPECT_NE(e.u, e.v);
      EXPECT_TRUE(live.insert(key(e)).second) << "duplicate base edge";
    }
    std::uint64_t prev_ts = 0;
    std::size_t erases = 0;
    for (const auto& u : ts.updates) {
      EXPECT_GT(u.ts, prev_ts);
      prev_ts = u.ts;
      EXPECT_NE(u.u, u.v);
      const auto k = key({u.u, u.v});
      if (u.kind == g::UpdateKind::Insert) {
        EXPECT_TRUE(live.insert(k).second) << "insert of a live edge";
      } else {
        EXPECT_EQ(live.erase(k), 1u) << "erase of a dead edge";
        ++erases;
      }
    }
    EXPECT_EQ(ts.updates.size(), 250u);
    EXPECT_GT(erases, 0u);
  }
}

TEST(TemporalStream, InsertOnlyByDefault) {
  const auto ts = g::temporal_stream(64, 100, 8);
  EXPECT_TRUE(ts.base.edges.empty());  // base_edges defaults to 0
  for (const auto& u : ts.updates)
    EXPECT_EQ(u.kind, g::UpdateKind::Insert);
}

TEST(TemporalStream, RejectsBadParameters) {
  EXPECT_THROW(g::temporal_stream(1, 10, 1), std::invalid_argument);
  g::TemporalStreamParams p;
  p.delete_frac = 1.0;
  EXPECT_THROW(g::temporal_stream(64, 10, 1, p), std::invalid_argument);
  // A tiny vertex set saturates: the generator must fail loudly instead
  // of spinning on rejected duplicate inserts.
  EXPECT_THROW(g::temporal_stream(3, 100, 1), std::runtime_error);
}
