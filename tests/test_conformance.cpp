// The SPMD conformance verifier (src/analysis/conformance): injected
// violations — divergent collective sequences, mismatched arguments or
// combine rules, an unbalanced cost ledger — must each be flagged with a
// diagnostic naming the divergent site and the threads involved, while
// disciplined collective code must pass with zero violations.  The
// determinism-digest tests run in every build (the digest is not gated on
// PGRAPH_CHECK_ACCESS).
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "analysis/access_checker.hpp"
#include "analysis/conformance.hpp"
#include "collectives/getd.hpp"
#include "collectives/setd.hpp"
#include "pgas/global_array.hpp"
#include "pgas/runtime.hpp"
#include "trace/tracer.hpp"

namespace an = pgraph::analysis;
namespace pg = pgraph::pgas;
namespace m = pgraph::machine;
namespace c = pgraph::coll;

namespace {

/// One disciplined SetD pass: thread t writes the indices congruent to
/// t mod s.  Used both as the clean workload and as the carrier the
/// injected violations piggyback on.
void clean_setd(pg::ThreadCtx& ctx, pg::GlobalArray<std::uint64_t>& d,
                c::CollectiveContext& cc, const c::CollectiveOptions& opt) {
  const std::size_t n = d.size();
  const auto s = static_cast<std::size_t>(ctx.nthreads());
  std::vector<std::uint64_t> idx, val;
  for (std::size_t i = static_cast<std::size_t>(ctx.id()); i < n; i += s) {
    idx.push_back(i);
    val.push_back(i * 7 + 1);
  }
  c::CollWorkspace<std::uint64_t> ws;
  c::setd(ctx, d, idx, std::span<const std::uint64_t>(val), opt, cc, ws);
}

}  // namespace

// --- determinism digests (available in every build) ----------------------

TEST(DeterminismDigest, OffByDefaultAndRecordsNothing) {
  pg::Runtime rt(pg::Topology::cluster(1, 2), m::CostParams::hps_cluster());
  EXPECT_FALSE(rt.digest_enabled());
  pgraph::trace::SuperstepTracer tr;
  tr.attach(rt);
  pg::GlobalArray<std::uint64_t> d(rt, 64);
  c::CollectiveContext cc(rt);
  rt.run([&](pg::ThreadCtx& ctx) {
    clean_setd(ctx, d, cc, c::CollectiveOptions::base());
  });
  for (const auto& st : tr.supersteps()) EXPECT_FALSE(st.has_digest);
  EXPECT_TRUE(tr.take_row_digests().empty());
}

namespace {

/// Run the standard small workload with digests on and return the
/// per-superstep digest sequence.  `bump` perturbs one committed element
/// before the run, modeling a nondeterminism bug.
std::vector<std::uint64_t> digest_run(std::uint64_t bump) {
  pg::Runtime rt(pg::Topology::cluster(2, 2), m::CostParams::hps_cluster());
  rt.set_digest_enabled(true);
  pgraph::trace::SuperstepTracer tr;
  tr.attach(rt);
  pg::GlobalArray<std::uint64_t> d(rt, 256);
  for (std::size_t i = 0; i < d.size(); ++i) d.raw(i) = i;
  d.raw(17) += bump;
  c::CollectiveContext cc(rt);
  rt.run([&](pg::ThreadCtx& ctx) {
    clean_setd(ctx, d, cc, c::CollectiveOptions::base());
    ctx.barrier();
    clean_setd(ctx, d, cc, c::CollectiveOptions::optimized(2));
  });
  return tr.take_row_digests();
}

}  // namespace

TEST(DeterminismDigest, IdenticalRunsProduceIdenticalSequences) {
  const auto a = digest_run(0);
  const auto b = digest_run(0);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(DeterminismDigest, DivergentStateBisectsToFirstDifferingSuperstep) {
  const auto good = digest_run(0);
  const auto bad = digest_run(1);  // one element off before superstep 0
  ASSERT_EQ(good.size(), bad.size());
  std::size_t first = good.size();
  for (std::size_t i = 0; i < good.size(); ++i)
    if (good[i] != bad[i]) {
      first = i;
      break;
    }
  // The perturbed element was committed before the first barrier, so the
  // divergence must surface at superstep 0 — and the perturbed element is
  // overwritten by the SetD pass, so later digests re-converge; the digest
  // stream is what pins the divergence to its superstep.
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(good.back(), bad.back());
}

TEST(DeterminismDigest, IndexKeyedSoPermutedValuesDiffer) {
  pg::Runtime rt(pg::Topology::cluster(1, 2), m::CostParams::hps_cluster());
  pg::GlobalArray<std::uint64_t> d(rt, 8);
  for (std::size_t i = 0; i < 8; ++i) d.raw(i) = i;
  const std::uint64_t before = d.state_digest();
  d.raw(3) = 4;
  d.raw(4) = 3;  // same multiset of values, different placement
  EXPECT_NE(d.state_digest(), before);
}

// --- conformance verifier (check builds only) -----------------------------

#ifdef PGRAPH_CHECK_ACCESS

namespace {

const an::ConformanceViolation* find_class(
    const std::vector<an::ConformanceViolation>& vs, an::ConformanceClass c) {
  for (const auto& v : vs)
    if (v.cls == c) return &v;
  return nullptr;
}

}  // namespace

class ConformanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& cv = an::ConformanceVerifier::instance();
    cv.set_enabled(true);
    cv.set_abort_on_violation(false);
    cv.clear_violations();
    // The injected workloads are conformance bugs, not access-discipline
    // bugs, but keep the access checker from aborting the process if an
    // injection trips it too.
    an::AccessChecker::instance().set_abort_on_violation(false);
  }
  void TearDown() override {
    auto& cv = an::ConformanceVerifier::instance();
    cv.clear_violations();
    cv.set_abort_on_violation(true);
    auto& ck = an::AccessChecker::instance();
    ck.clear_violations();
    ck.set_abort_on_violation(true);
  }
};

TEST_F(ConformanceTest, CleanCollectiveRunHasZeroViolations) {
  pg::Runtime rt(pg::Topology::cluster(2, 2), m::CostParams::hps_cluster());
  pg::GlobalArray<std::uint64_t> d(rt, 300);
  c::CollectiveContext cc(rt);
  rt.run([&](pg::ThreadCtx& ctx) {
    clean_setd(ctx, d, cc, c::CollectiveOptions::base());
    ctx.barrier();
    clean_setd(ctx, d, cc, c::CollectiveOptions::optimized(2));
  });
  EXPECT_EQ(an::ConformanceVerifier::instance().violation_count(), 0u);
}

TEST_F(ConformanceTest, DivergentSiteTagIsFlaggedWithBothSitesNamed) {
  pg::Runtime rt(pg::Topology::cluster(1, 4), m::CostParams::hps_cluster());
  pg::GlobalArray<std::uint64_t> d(rt, 128);
  c::CollectiveContext cc(rt);
  rt.run([&](pg::ThreadCtx& ctx) {
    // Injected violation: thread 2 reaches a lexically different SetD call
    // than everyone else (same array, same shape — only the site differs).
    c::CollectiveOptions opt;
    opt.site = ctx.id() == 2 ? "relabel.b" : "relabel.a";
    clean_setd(ctx, d, cc, opt);
  });
  auto& cv = an::ConformanceVerifier::instance();
  ASSERT_GT(cv.violation_count(), 0u);
  const auto vs = cv.violations();
  const auto* v = find_class(vs, an::ConformanceClass::SequenceDivergence);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->thread, 2);
  EXPECT_EQ(v->other_thread, 0);
  EXPECT_EQ(v->position, 0u);
  EXPECT_NE(v->detail.find("relabel.a"), std::string::npos) << v->detail;
  EXPECT_NE(v->detail.find("relabel.b"), std::string::npos) << v->detail;
}

TEST_F(ConformanceTest, MismatchedCombineRuleIsFlagged) {
  pg::Runtime rt(pg::Topology::cluster(1, 2), m::CostParams::hps_cluster());
  pg::GlobalArray<std::uint64_t> d(rt, 64);
  for (std::size_t i = 0; i < d.size(); ++i) d.raw(i) = UINT64_MAX;
  c::CollectiveContext cc(rt);
  const auto opt = c::CollectiveOptions::base();
  rt.run([&](pg::ThreadCtx& ctx) {
    // Injected violation: thread 1 resolves concurrent writes with Min
    // while thread 0 overwrites — a different collective at the same spot.
    std::vector<std::uint64_t> idx{static_cast<std::uint64_t>(ctx.id())};
    std::vector<std::uint64_t> val{7};
    c::CollWorkspace<std::uint64_t> ws;
    if (ctx.id() == 1)
      c::setd_min(ctx, d, idx, std::span<const std::uint64_t>(val), opt, cc,
                  ws);
    else
      c::setd(ctx, d, idx, std::span<const std::uint64_t>(val), opt, cc, ws);
  });
  auto& cv = an::ConformanceVerifier::instance();
  const auto vs = cv.violations();
  const auto* v = find_class(vs, an::ConformanceClass::SequenceDivergence);
  ASSERT_NE(v, nullptr);
  EXPECT_NE(v->detail.find("setd_min"), std::string::npos) << v->detail;
}

TEST_F(ConformanceTest, DifferentTargetArraysAreAnArgumentMismatch) {
  pg::Runtime rt(pg::Topology::cluster(1, 2), m::CostParams::hps_cluster());
  // Same size, so both threads agree on shape; only the array identity
  // (uid) differs — the classic "thread 1 captured the wrong array" bug.
  pg::GlobalArray<std::uint64_t> a(rt, 64);
  pg::GlobalArray<std::uint64_t> b(rt, 64);
  c::CollectiveContext cc(rt);
  const auto opt = c::CollectiveOptions::base();
  rt.run([&](pg::ThreadCtx& ctx) {
    std::vector<std::uint64_t> idx{static_cast<std::uint64_t>(ctx.id())};
    std::vector<std::uint64_t> val{9};
    c::CollWorkspace<std::uint64_t> ws;
    c::setd(ctx, ctx.id() == 1 ? b : a, idx,
            std::span<const std::uint64_t>(val), opt, cc, ws);
  });
  auto& cv = an::ConformanceVerifier::instance();
  const auto vs = cv.violations();
  const auto* v = find_class(vs, an::ConformanceClass::ArgumentMismatch);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->thread, 1);
  EXPECT_EQ(v->position, 0u);
}

TEST_F(ConformanceTest, UnmirroredChargeImbalancesTheLedger) {
  pg::Runtime rt(pg::Topology::cluster(1, 2), m::CostParams::hps_cluster());
  rt.run([&](pg::ThreadCtx& ctx) {
    // Injected violation: thread 1 adds straight to its PhaseStats without
    // going through ThreadCtx::charge — the signature of a cost hook that
    // forgot its ledger entry (a missed charge elsewhere looks the same).
    if (ctx.id() == 1) ctx.stats().add(m::Cat::Work, 1000.0);
    ctx.barrier();
  });
  auto& cv = an::ConformanceVerifier::instance();
  const auto vs = cv.violations();
  const auto* v = find_class(vs, an::ConformanceClass::LedgerImbalance);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->thread, 1);
  EXPECT_NE(v->detail.find("Work"), std::string::npos) << v->detail;
}

TEST_F(ConformanceTest, DoubleChargedMirrorImbalancesTheLedger) {
  pg::Runtime rt(pg::Topology::cluster(1, 2), m::CostParams::hps_cluster());
  rt.run([&](pg::ThreadCtx& ctx) {
    // Injected violation, other direction: the mirror hears a charge the
    // runtime never made (a double-counted hook).
    if (ctx.id() == 0)
      an::ConformanceVerifier::instance().ledger_charge(0, m::Cat::Comm,
                                                        42.0);
    ctx.barrier();
  });
  auto& cv = an::ConformanceVerifier::instance();
  const auto vs = cv.violations();
  const auto* v = find_class(vs, an::ConformanceClass::LedgerImbalance);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->thread, 0);
  EXPECT_NE(v->detail.find("Comm"), std::string::npos) << v->detail;
}

TEST_F(ConformanceTest, LedgerResyncsAfterOneDiagnostic) {
  pg::Runtime rt(pg::Topology::cluster(1, 2), m::CostParams::hps_cluster());
  rt.run([&](pg::ThreadCtx& ctx) {
    if (ctx.id() == 0)
      an::ConformanceVerifier::instance().ledger_charge(0, m::Cat::Comm, 1.0);
    ctx.barrier();  // one imbalance reported here, then the mirror resyncs
    ctx.barrier();
    ctx.barrier();
  });
  EXPECT_EQ(an::ConformanceVerifier::instance().violation_count(), 1u);
}

TEST_F(ConformanceTest, CountersResetAcrossConsecutivelyAttachedRuntimes) {
  // Runtime 1: four threads, a deliberate divergence, work on the clocks.
  {
    pg::Runtime rt(pg::Topology::cluster(2, 2), m::CostParams::hps_cluster());
    pg::GlobalArray<std::uint64_t> d(rt, 64);
    c::CollectiveContext cc(rt);
    rt.run([&](pg::ThreadCtx& ctx) {
      c::CollectiveOptions opt;
      opt.site = ctx.id() == 3 ? "stale.b" : "stale.a";
      clean_setd(ctx, d, cc, opt);
      ctx.compute(100, m::Cat::Work);
    });
    EXPECT_GT(an::ConformanceVerifier::instance().violation_count(), 0u);
  }
  an::ConformanceVerifier::instance().clear_violations();

  // Runtime 2: fewer threads, clean workload.  Stale fingerprints from
  // threads 2..3 and the dead runtime's ledger baselines must not leak
  // into this run's epochs (begin_run re-baselines every cell).
  pg::Runtime rt2(pg::Topology::cluster(1, 2), m::CostParams::hps_cluster());
  pg::GlobalArray<std::uint64_t> d2(rt2, 64);
  c::CollectiveContext cc2(rt2);
  rt2.run([&](pg::ThreadCtx& ctx) {
    clean_setd(ctx, d2, cc2, c::CollectiveOptions::base());
  });
  EXPECT_EQ(an::ConformanceVerifier::instance().violation_count(), 0u);

  // Same runtime again after reset_costs: the ledger must re-baseline from
  // the zeroed stats, not compare against the pre-reset mirror.
  rt2.reset_costs();
  rt2.run([&](pg::ThreadCtx& ctx) {
    clean_setd(ctx, d2, cc2, c::CollectiveOptions::optimized(2));
  });
  EXPECT_EQ(an::ConformanceVerifier::instance().violation_count(), 0u);
}

TEST_F(ConformanceTest, GetDIsFingerprintedToo) {
  pg::Runtime rt(pg::Topology::cluster(1, 2), m::CostParams::hps_cluster());
  pg::GlobalArray<std::uint64_t> d(rt, 64);
  for (std::size_t i = 0; i < d.size(); ++i) d.raw(i) = i;
  c::CollectiveContext cc(rt);
  const auto opt = c::CollectiveOptions::base();
  rt.run([&](pg::ThreadCtx& ctx) {
    // Each thread targets its own block: the serve loop must never read a
    // reply/value slot its peer's *different* collective never published.
    std::vector<std::uint64_t> idx{ctx.id() == 1 ? d.block_begin(1) : 0};
    std::vector<std::uint64_t> out(1);
    std::vector<std::uint64_t> val{1};
    c::CollWorkspace<std::uint64_t> ws;
    // Injected violation: thread 1 runs a GetD where thread 0 runs a SetD.
    // Both have the same barrier structure, so the run completes and the
    // divergence is caught at the epoch check rather than by a hang.
    if (ctx.id() == 1)
      c::getd(ctx, d, idx, std::span<std::uint64_t>(out), opt, cc, ws);
    else
      c::setd(ctx, d, idx, std::span<const std::uint64_t>(val), opt, cc, ws);
  });
  auto& cv = an::ConformanceVerifier::instance();
  const auto vs = cv.violations();
  const auto* v = find_class(vs, an::ConformanceClass::SequenceDivergence);
  ASSERT_NE(v, nullptr);
  EXPECT_NE(v->detail.find("getd"), std::string::npos) << v->detail;
  EXPECT_NE(v->detail.find("setd"), std::string::npos) << v->detail;
}

TEST_F(ConformanceTest, DisabledVerifierStoresNothing) {
  an::ConformanceVerifier::instance().set_enabled(false);
  pg::Runtime rt(pg::Topology::cluster(1, 2), m::CostParams::hps_cluster());
  pg::GlobalArray<std::uint64_t> d(rt, 64);
  c::CollectiveContext cc(rt);
  rt.run([&](pg::ThreadCtx& ctx) {
    c::CollectiveOptions opt;
    opt.site = ctx.id() == 1 ? "x" : "y";  // would be a divergence
    clean_setd(ctx, d, cc, opt);
  });
  EXPECT_EQ(an::ConformanceVerifier::instance().violation_count(), 0u);
  an::ConformanceVerifier::instance().set_enabled(true);
}

#else  // !PGRAPH_CHECK_ACCESS

TEST(Conformance, SkippedWithoutCheckAccessBuild) {
  GTEST_SKIP() << "conformance verifier requires PGRAPH_CHECK_ACCESS "
                  "(configure with --preset check)";
}

#endif  // PGRAPH_CHECK_ACCESS
