// Algorithm 1 (recursive access scheduling), counting sort, virtual-thread
// decomposition — plus the cache-simulator proof that scheduling reduces
// misses (the core claim of Section IV).
#include <gtest/gtest.h>

#include <numeric>

#include "graph/rng.hpp"
#include "machine/cache_sim.hpp"
#include "sched/access_sched.hpp"
#include "sched/count_sort.hpp"
#include "sched/virtual_threads.hpp"

namespace s = pgraph::sched;
namespace m = pgraph::machine;
using pgraph::graph::Xoshiro256;

TEST(CountSort, StableAndRanked) {
  const std::vector<std::uint64_t> in = {5, 1, 4, 1, 3, 5, 0};
  std::vector<std::uint64_t> sorted(in.size());
  std::vector<std::uint32_t> rank(in.size());
  std::vector<std::size_t> off;
  s::count_sort<std::uint64_t>(
      in, [](std::uint64_t x) { return static_cast<std::size_t>(x); }, 6,
      sorted, rank, off);
  EXPECT_EQ(sorted, (std::vector<std::uint64_t>{0, 1, 1, 3, 4, 5, 5}));
  // Stability: the two 1s keep input order (positions 1 then 3), the two
  // 5s keep order (0 then 5).
  EXPECT_EQ(rank[1], 1u);
  EXPECT_EQ(rank[2], 3u);
  EXPECT_EQ(rank[5], 0u);
  EXPECT_EQ(rank[6], 5u);
  // Bucket offsets partition the output.
  EXPECT_EQ(off, (std::vector<std::size_t>{0, 1, 3, 3, 4, 5, 7}));
  // Permute phase reconstructs the original order.
  std::vector<std::uint64_t> rebuilt(in.size());
  for (std::size_t j = 0; j < in.size(); ++j) rebuilt[rank[j]] = sorted[j];
  EXPECT_EQ(rebuilt, in);
}

TEST(CountSort, EmptyInput) {
  std::vector<std::uint64_t> in, sorted;
  std::vector<std::uint32_t> rank;
  std::vector<std::size_t> off;
  s::count_sort<std::uint64_t>(
      in, [](std::uint64_t x) { return static_cast<std::size_t>(x); }, 4,
      sorted, rank, off);
  EXPECT_EQ(off, (std::vector<std::size_t>{0, 0, 0, 0, 0}));
}

namespace {
std::vector<std::uint64_t> make_d(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint64_t> d(n);
  Xoshiro256 rng(seed);
  for (auto& x : d) x = rng.next();
  return d;
}
std::vector<std::uint64_t> make_r(std::size_t m, std::size_t n,
                                  std::uint64_t seed) {
  std::vector<std::uint64_t> r(m);
  Xoshiro256 rng(seed);
  for (auto& x : r) x = rng.next_below(n);
  return r;
}
}  // namespace

struct GatherCase {
  std::size_t n, mreq;
  std::vector<std::size_t> ws;
};

class ScheduledGatherP : public ::testing::TestWithParam<GatherCase> {};

TEST_P(ScheduledGatherP, MatchesDirectGather) {
  const auto& c = GetParam();
  const auto d = make_d(c.n, 1);
  const auto r = make_r(c.mreq, c.n, 2);
  std::vector<std::uint64_t> expect(c.mreq), got(c.mreq, 0);
  s::direct_gather(d, r, expect);
  s::scheduled_gather(d, r, got, c.ws);
  EXPECT_EQ(got, expect);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScheduledGatherP,
    ::testing::Values(
        GatherCase{1, 10, {4}},                 // single-element D
        GatherCase{100, 0, {4}},                // no requests
        GatherCase{100, 1000, {}},              // no scheduling (degenerate)
        GatherCase{1000, 5000, {1}},            // W=1 degenerates
        GatherCase{1000, 5000, {8}},            // one level
        GatherCase{1000, 5000, {8, 8}},         // two levels
        GatherCase{1000, 5000, {4, 4, 4}},      // three levels (paper max)
        GatherCase{1000, 5000, {1000}},         // W = n (full sort)
        GatherCase{777, 3333, {13}},            // non-dividing W
        GatherCase{65536, 100000, {16, 16}}));  // larger instance

TEST(ScheduledScatter, MatchesDirectScatterLastWriterWins) {
  const std::size_t n = 512, mreq = 4096;
  const auto r = make_r(mreq, n, 3);
  const auto v = make_d(mreq, 4);
  std::vector<std::uint64_t> d1(n, 0), d2(n, 0);
  // Direct last-writer-wins.
  for (std::size_t i = 0; i < mreq; ++i) d1[r[i]] = v[i];
  const std::vector<std::size_t> ws = {8, 4};
  s::scheduled_scatter(d2, r, v, ws);
  EXPECT_EQ(d1, d2);
}

TEST(ScheduledGather, ChargesLessAccessTimeThanDirectOnLargeD) {
  // Analytic model: blocking reduces the access-phase working set.
  m::CostParams p = m::CostParams::hps_cluster();
  p.cache_bytes = 1 << 14;  // small cache to make the effect visible
  m::MemoryModel mm(p);
  const std::size_t n = 1 << 16, mreq = 1 << 18;
  const auto d = make_d(n, 5);
  const auto r = make_r(mreq, n, 6);
  std::vector<std::uint64_t> out(mreq);
  s::SchedCost direct, sched;
  s::direct_gather(d, r, out, &mm, &direct);
  const std::vector<std::size_t> ws = {64};
  s::scheduled_gather(d, r, out, ws, &mm, &sched);
  EXPECT_LT(sched.access_ns, 0.5 * direct.access_ns);
}

TEST(ScheduledGather, TraceThroughCacheSimShowsFewerMisses) {
  // The real (not analytic) validation: replay both access traces through
  // the cache simulator.  Scheduling must cut misses in the access phase.
  const std::size_t n = 1 << 16;    // 512 KiB of D (uint64)
  const std::size_t mreq = 1 << 18;
  const auto d = make_d(n, 7);
  const auto r = make_r(mreq, n, 8);
  std::vector<std::uint64_t> out(mreq);

  s::AccessTrace direct_trace, sched_trace;
  s::direct_gather(d, r, out, nullptr, nullptr, &direct_trace);
  const std::vector<std::size_t> ws = {64, 8};
  s::scheduled_gather(d, r, out, ws, nullptr, nullptr, &sched_trace);
  ASSERT_EQ(direct_trace.size(), sched_trace.size());

  const auto misses = [](const s::AccessTrace& t) {
    m::CacheSim sim(1 << 15, 64, 8);  // 32 KiB
    for (const std::uint64_t idx : t) sim.access(idx * 8);
    return sim.misses();
  };
  const auto md = misses(direct_trace);
  const auto ms = misses(sched_trace);
  EXPECT_LT(ms, md / 4) << "scheduled misses " << ms << " vs direct " << md;
}

TEST(VBlocks, KeysAndOwners) {
  const s::VBlocks vb(100, 4, 3);  // blk = 25, sub = 9
  EXPECT_EQ(vb.blk, 25u);
  EXPECT_EQ(vb.sub_blk, 9u);
  EXPECT_EQ(vb.nbuckets(), 12u);
  EXPECT_EQ(vb.owner(0), 0);
  EXPECT_EQ(vb.owner(24), 0);
  EXPECT_EQ(vb.owner(25), 1);
  EXPECT_EQ(vb.owner(99), 3);
  EXPECT_EQ(vb.vkey(0), 0u);
  EXPECT_EQ(vb.vkey(9), 1u);
  EXPECT_EQ(vb.vkey(18), 2u);
  EXPECT_EQ(vb.vkey(24), 2u);  // clamped to last sub-block
  EXPECT_EQ(vb.vkey(25), 3u);  // thread 1, sub 0
  EXPECT_EQ(vb.first_bucket(2), 6u);
}

TEST(VBlocks, KeysAreMonotoneInIndex) {
  const s::VBlocks vb(1000, 7, 5);
  std::size_t prev = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const std::size_t k = vb.vkey(i);
    EXPECT_GE(k, prev);
    EXPECT_LT(k, vb.nbuckets());
    prev = k;
  }
}

TEST(VBlocks, TprimeOneMatchesOwner) {
  const s::VBlocks vb(997, 8, 1);
  for (std::uint64_t i = 0; i < 997; ++i)
    EXPECT_EQ(vb.vkey(i), static_cast<std::size_t>(vb.owner(i)));
}
