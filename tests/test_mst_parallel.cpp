// Parallel MST variants (SetDMin-based PGAS Boruvka, lock-based MST-SMP)
// against Kruskal.
#include <gtest/gtest.h>

#include "core/mst_pgas.hpp"
#include "core/mst_seq.hpp"
#include "core/mst_smp.hpp"
#include "graph/generators.hpp"

namespace g = pgraph::graph;
namespace pg = pgraph::pgas;
namespace m = pgraph::machine;
namespace core = pgraph::core;

namespace {

std::vector<g::WEdgeList> test_graphs() {
  std::vector<g::WEdgeList> out;
  out.push_back(g::with_random_weights(g::path_graph(50), 1));
  out.push_back(g::with_random_weights(g::cycle_graph(51), 2));
  out.push_back(g::with_random_weights(g::disjoint_cliques(5, 6), 3));
  out.push_back(g::with_random_weights(g::random_graph(300, 900, 4), 5));
  out.push_back(g::with_random_weights(g::random_graph(400, 500, 6), 7));
  out.push_back(g::with_random_weights(g::hybrid_graph(400, 1600, 8), 9));
  out.push_back(g::with_random_weights(g::grid_graph(16, 16), 10));
  // Heavy ties: few distinct weights.
  auto ties = g::with_random_weights(g::random_graph(200, 800, 11), 12);
  for (auto& e : ties.edges) e.w %= 3;
  out.push_back(std::move(ties));
  // Edgeless.
  g::WEdgeList empty;
  empty.n = 13;
  out.push_back(std::move(empty));
  return out;
}

struct Topo {
  int nodes, threads;
};

void check(const g::WEdgeList& el, const core::ParMstResult& got,
           const core::MstResult& truth, const std::string& what) {
  EXPECT_EQ(got.total_weight, truth.total_weight) << what;
  EXPECT_EQ(got.edges.size(), truth.edges.size()) << what;
  core::MstResult as_seq;
  as_seq.edges = got.edges;
  as_seq.total_weight = got.total_weight;
  EXPECT_TRUE(core::is_spanning_forest(el, as_seq)) << what;
}

}  // namespace

TEST(MstPgas, MatchesKruskalAcrossTopologiesAndGraphs) {
  const auto graphs = test_graphs();
  for (const auto& [nodes, threads] :
       {Topo{1, 1}, Topo{1, 4}, Topo{2, 2}, Topo{4, 2}}) {
    pg::Runtime rt(pg::Topology::cluster(nodes, threads),
                   m::CostParams::hps_cluster());
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      const auto truth = core::mst_kruskal(graphs[gi]);
      const auto got = core::mst_pgas(rt, graphs[gi]);
      check(graphs[gi], got, truth,
            "pgas " + std::to_string(nodes) + "x" + std::to_string(threads) +
                " graph " + std::to_string(gi));
    }
  }
}

TEST(MstPgas, OptionConfigs) {
  pg::Runtime rt(pg::Topology::cluster(2, 3),
                 m::CostParams::hps_cluster());
  const auto el = g::with_random_weights(g::random_graph(500, 2000, 13), 14);
  const auto truth = core::mst_kruskal(el);
  for (const auto& opt :
       {core::MstOptions::base(), core::MstOptions::optimized(1),
        core::MstOptions::optimized(8)}) {
    const auto got = core::mst_pgas(rt, el, opt);
    check(el, got, truth, "option config");
  }
}

TEST(MstSmp, MatchesKruskalAcrossThreadCountsAndGraphs) {
  const auto graphs = test_graphs();
  for (const int threads : {1, 2, 4, 8}) {
    pg::Runtime rt(pg::Topology::single_node(threads),
                   m::CostParams::smp_node());
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      const auto truth = core::mst_kruskal(graphs[gi]);
      const auto got = core::mst_smp(rt, graphs[gi]);
      check(graphs[gi], got, truth,
            "smp t=" + std::to_string(threads) + " graph " +
                std::to_string(gi));
    }
  }
}

TEST(MstPgas, DeterministicAcrossRuns) {
  pg::Runtime rt(pg::Topology::cluster(2, 2),
                 m::CostParams::hps_cluster());
  const auto el = g::with_random_weights(g::random_graph(300, 1200, 15), 16);
  auto a = core::mst_pgas(rt, el);
  auto b = core::mst_pgas(rt, el);
  std::sort(a.edges.begin(), a.edges.end());
  std::sort(b.edges.begin(), b.edges.end());
  EXPECT_EQ(a.edges, b.edges);
}

TEST(MstPgas, RejectsOversizedWeights) {
  g::WEdgeList el;
  el.n = 2;
  el.edges = {{0, 1, 1ULL << 33}};
  pg::Runtime rt(pg::Topology::single_node(1),
                 m::CostParams::hps_cluster());
  EXPECT_THROW(core::mst_pgas(rt, el), std::invalid_argument);
}

TEST(MstPgas, CostTelemetryPopulated) {
  pg::Runtime rt(pg::Topology::cluster(2, 2),
                 m::CostParams::hps_cluster());
  const auto el = g::with_random_weights(g::random_graph(300, 1200, 17), 18);
  const auto r = core::mst_pgas(rt, el);
  EXPECT_GT(r.costs.modeled_ns, 0.0);
  EXPECT_GT(r.costs.messages, 0u);
  EXPECT_GT(r.iterations, 0);
}

TEST(MstParallel, LocksChargedOnSmpOnly) {
  const auto el = g::with_random_weights(g::random_graph(300, 1200, 19), 20);
  pg::Runtime rt1(pg::Topology::single_node(4), m::CostParams::smp_node());
  const auto smp = core::mst_smp(rt1, el);
  EXPECT_EQ(smp.costs.messages, 0u);  // single node: no network at all
  pg::Runtime rt2(pg::Topology::cluster(4, 1),
                  m::CostParams::hps_cluster());
  const auto pgas = core::mst_pgas(rt2, el);
  EXPECT_GT(pgas.costs.messages, 0u);
}
