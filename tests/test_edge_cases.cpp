// Degenerate-shape edge cases: more threads than elements, tiny inputs,
// and exact-determinism regression guards for the cost model.
#include <gtest/gtest.h>

#include "collectives/getd.hpp"
#include "collectives/setd.hpp"
#include "core/cc_coalesced.hpp"
#include "core/cc_seq.hpp"
#include "core/mst_pgas.hpp"
#include "core/mst_seq.hpp"
#include "graph/generators.hpp"
#include "pgas/global_array.hpp"

namespace c = pgraph::coll;
namespace core = pgraph::core;
namespace g = pgraph::graph;
namespace pg = pgraph::pgas;
namespace m = pgraph::machine;

TEST(EdgeCases, GlobalArraySmallerThanThreadCount) {
  pg::Runtime rt(pg::Topology::cluster(4, 2), m::CostParams::hps_cluster());
  pg::GlobalArray<std::uint64_t> a(rt, 3);  // 8 threads, 3 elements
  EXPECT_EQ(a.block_size(), 1u);
  EXPECT_EQ(a.owner(2), 2);
  for (int t = 3; t < 8; ++t) EXPECT_EQ(a.local_size(t), 0u);
  rt.run([&](pg::ThreadCtx& ctx) {
    auto blk = a.local_span(ctx.id());
    for (auto& x : blk) x = 7;
    ctx.barrier();
    EXPECT_EQ(a.get(ctx, 2), 7u);
    ctx.barrier();
  });
}

TEST(EdgeCases, CollectivesOnTinyArrays) {
  pg::Runtime rt(pg::Topology::cluster(4, 2), m::CostParams::hps_cluster());
  pg::GlobalArray<std::uint64_t> d(rt, 5);
  for (std::size_t i = 0; i < 5; ++i) d.raw(i) = 100 + i;
  c::CollectiveContext cc(rt);
  rt.run([&](pg::ThreadCtx& ctx) {
    // Every thread asks for every element; some threads own nothing.
    std::vector<std::uint64_t> idx = {0, 1, 2, 3, 4};
    std::vector<std::uint64_t> out(5);
    c::CollWorkspace<std::uint64_t> ws;
    c::getd(ctx, d, idx, std::span<std::uint64_t>(out),
            c::CollectiveOptions::optimized(), cc, ws);
    for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(out[i], 100 + i);
    // And a SetDMin with everyone proposing.
    std::vector<std::uint64_t> val(5,
                                   static_cast<std::uint64_t>(ctx.id()) + 50);
    c::setd_min(ctx, d, idx, std::span<const std::uint64_t>(val),
                c::CollectiveOptions::optimized(), cc, ws);
    ctx.barrier();
  });
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(d.raw(i), 50u);
}

TEST(EdgeCases, CcWithMoreThreadsThanVertices) {
  pg::Runtime rt(pg::Topology::cluster(4, 3), m::CostParams::hps_cluster());
  g::EdgeList el;
  el.n = 5;
  el.edges = {{0, 1}, {2, 3}};
  const auto r = core::cc_coalesced(rt, el);
  EXPECT_EQ(r.num_components, 3u);
  EXPECT_TRUE(core::same_partition(r.labels, core::cc_dsu(el).labels));
}

TEST(EdgeCases, MstWithMoreThreadsThanEdges) {
  pg::Runtime rt(pg::Topology::cluster(4, 3), m::CostParams::hps_cluster());
  g::WEdgeList el;
  el.n = 4;
  el.edges = {{0, 1, 5}, {1, 2, 3}};
  const auto r = core::mst_pgas(rt, el);
  EXPECT_EQ(r.total_weight, 8u);
  EXPECT_EQ(r.edges.size(), 2u);
}

TEST(EdgeCases, SingleThreadSingleNodeEverything) {
  pg::Runtime rt(pg::Topology::single_node(1), m::CostParams::smp_node());
  const auto el = g::random_graph(200, 600, 1);
  EXPECT_TRUE(core::same_partition(core::cc_coalesced(rt, el).labels,
                                   core::cc_dsu(el).labels));
  const auto wel = g::with_random_weights(el, 2);
  EXPECT_EQ(core::mst_pgas(rt, wel).total_weight,
            core::mst_kruskal(wel).total_weight);
}

TEST(EdgeCases, ModeledTimeIsExactlyDeterministic) {
  // The whole point of a cost model over wall clocks: identical runs give
  // bit-identical modeled times, messages, and breakdowns.
  const auto el = g::random_graph(400, 1600, 3);
  const auto run_once = [&] {
    pg::Runtime rt(pg::Topology::cluster(4, 2),
                   m::CostParams::hps_cluster());
    const auto r = core::cc_coalesced(rt, el);
    return std::tuple{r.costs.modeled_ns, r.costs.messages,
                      r.costs.breakdown.get(m::Cat::Comm),
                      r.costs.breakdown.get(m::Cat::Copy)};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));
  EXPECT_EQ(std::get<3>(a), std::get<3>(b));
}

TEST(EdgeCases, MstModeledTimeDeterministic) {
  const auto wel = g::with_random_weights(g::random_graph(300, 900, 4), 5);
  const auto run_once = [&] {
    pg::Runtime rt(pg::Topology::cluster(2, 2),
                   m::CostParams::hps_cluster());
    return core::mst_pgas(rt, wel).costs.modeled_ns;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(EdgeCases, DenseTinyGraph) {
  // Complete graph on 8 vertices across 8 threads.
  pg::Runtime rt(pg::Topology::cluster(4, 2), m::CostParams::hps_cluster());
  const auto el = g::disjoint_cliques(1, 8);
  const auto r = core::cc_coalesced(rt, el);
  EXPECT_EQ(r.num_components, 1u);
  const auto wel = g::with_random_weights(el, 6);
  const auto mst = core::mst_pgas(rt, wel);
  EXPECT_EQ(mst.edges.size(), 7u);
  EXPECT_EQ(mst.total_weight, core::mst_kruskal(wel).total_weight);
}
