// The UPC veneer: affinity semantics of upc_forall, element access, bulk
// transfers.
#include <gtest/gtest.h>

#include <atomic>

#include "pgas/upc.hpp"

namespace pg = pgraph::pgas;
namespace m = pgraph::machine;

TEST(UpcForall, PointerAffinityCoversEachIndexOnce) {
  pg::Runtime rt(pg::Topology::cluster(2, 3), m::CostParams::hps_cluster());
  pg::GlobalArray<std::uint64_t> a(rt, 100);
  std::vector<std::atomic<int>> hits(100);
  rt.run([&](pg::ThreadCtx& ctx) {
    pg::upc::Env upc(ctx);
    upc.forall(0, 100, a, [&](std::size_t i) {
      // Affinity: the executing thread must own A[i].
      EXPECT_EQ(a.owner(i), ctx.id());
      hits[i].fetch_add(1);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(UpcForall, IntegerAffinityIsCyclic) {
  pg::Runtime rt(pg::Topology::cluster(1, 4), m::CostParams::hps_cluster());
  std::vector<std::atomic<int>> owner(40);
  rt.run([&](pg::ThreadCtx& ctx) {
    pg::upc::Env upc(ctx);
    upc.forall(0, 40, [&](std::size_t i) {
      owner[i].store(ctx.id());
    });
  });
  for (std::size_t i = 0; i < 40; ++i)
    EXPECT_EQ(owner[i].load(), static_cast<int>(i % 4));
}

TEST(UpcEnv, ReadWriteAndBulk) {
  pg::Runtime rt(pg::Topology::cluster(2, 2), m::CostParams::hps_cluster());
  pg::GlobalArray<std::uint64_t> a(rt, 16);
  rt.run([&](pg::ThreadCtx& ctx) {
    pg::upc::Env upc(ctx);
    EXPECT_EQ(upc.threads(), 4);
    EXPECT_EQ(upc.mythread(), ctx.id());
    upc.forall(0, 16, a, [&](std::size_t i) {
      upc.write<std::uint64_t>(a, i, i * 2);
    });
    upc.barrier();
    // Cross-thread fine-grained reads.
    EXPECT_EQ(upc.read(a, 15), 30u);
    // Bulk get of thread 0's block.
    std::uint64_t buf[4];
    upc.memget(buf, a, 0, 4);
    EXPECT_EQ(buf[3], 6u);
    upc.barrier();
    // Bulk put back.
    if (ctx.id() == 1) {
      const std::uint64_t vals[4] = {9, 9, 9, 9};
      upc.memput(a, 0, vals, 4);
    }
    upc.barrier();
    EXPECT_EQ(upc.read(a, 2), 9u);
    upc.barrier();
  });
}

TEST(UpcEnv, FineAccessesAreChargedAsCommunication) {
  pg::Runtime rt(pg::Topology::cluster(4, 1), m::CostParams::hps_cluster());
  pg::GlobalArray<std::uint64_t> a(rt, 64);
  rt.run([&](pg::ThreadCtx& ctx) {
    pg::upc::Env upc(ctx);
    // Everyone reads a remote element repeatedly.
    const std::size_t remote = (ctx.id() + 1) % 4 * 16;
    for (int i = 0; i < 10; ++i) upc.read(a, remote);
    ctx.barrier();
  });
  EXPECT_GE(rt.net().fine_messages(), 4u * 10 * 2);  // round trips
}
