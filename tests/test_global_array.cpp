// Block-distributed shared array semantics and cost charging.
#include <gtest/gtest.h>

#include <array>

#include "pgas/global_array.hpp"
#include "pgas/runtime.hpp"

namespace pg = pgraph::pgas;
namespace m = pgraph::machine;

TEST(GlobalArray, BlockDistribution) {
  pg::Runtime rt(pg::Topology::cluster(2, 2),
                 m::CostParams::hps_cluster());
  pg::GlobalArray<std::uint64_t> a(rt, 10);
  // ceil(10/4) = 3 per block.
  EXPECT_EQ(a.block_size(), 3u);
  EXPECT_EQ(a.owner(0), 0);
  EXPECT_EQ(a.owner(2), 0);
  EXPECT_EQ(a.owner(3), 1);
  EXPECT_EQ(a.owner(9), 3);
  EXPECT_EQ(a.block_begin(3), 9u);
  EXPECT_EQ(a.block_end(3), 10u);
  EXPECT_EQ(a.local_size(3), 1u);
  EXPECT_EQ(a.local_size(1), 3u);
}

TEST(GlobalArray, ExactDivision) {
  pg::Runtime rt(pg::Topology::cluster(1, 4),
                 m::CostParams::hps_cluster());
  pg::GlobalArray<std::uint64_t> a(rt, 8);
  EXPECT_EQ(a.block_size(), 2u);
  for (int t = 0; t < 4; ++t) EXPECT_EQ(a.local_size(t), 2u);
}

TEST(GlobalArray, GetPutAcrossThreads) {
  pg::Runtime rt(pg::Topology::cluster(2, 2),
                 m::CostParams::hps_cluster());
  pg::GlobalArray<std::uint64_t> a(rt, 16);
  rt.run([&](pg::ThreadCtx& ctx) {
    // Each thread writes id into every cell of the NEXT thread's block.
    const int peer = (ctx.id() + 1) % 4;
    for (std::size_t i = a.block_begin(peer); i < a.block_end(peer); ++i)
      a.put(ctx, i, static_cast<std::uint64_t>(ctx.id()));
    ctx.barrier();
    // My block should hold my predecessor's id.
    const std::uint64_t expect =
        static_cast<std::uint64_t>((ctx.id() + 3) % 4);
    for (std::size_t i = a.block_begin(ctx.id()); i < a.block_end(ctx.id());
         ++i)
      EXPECT_EQ(a.get(ctx, i), expect);
    ctx.barrier();
  });
}

TEST(GlobalArray, RemoteAccessCostsMoreThanLocal) {
  pg::Runtime rt(pg::Topology::cluster(2, 1),
                 m::CostParams::hps_cluster());
  pg::GlobalArray<std::uint64_t> a(rt, 8);
  std::array<double, 2> cost{};
  rt.run([&](pg::ThreadCtx& ctx) {
    const double t0 = ctx.now_ns();
    if (ctx.id() == 0) {
      a.get(ctx, 0);  // local
    } else {
      a.get(ctx, 0);  // remote (owner thread 0, other node)
    }
    cost[static_cast<std::size_t>(ctx.id())] = ctx.now_ns() - t0;
  });
  EXPECT_GT(cost[1], 10 * cost[0]);
}

TEST(GlobalArray, MemgetMemputBulk) {
  pg::Runtime rt(pg::Topology::cluster(2, 1),
                 m::CostParams::hps_cluster());
  pg::GlobalArray<std::uint64_t> a(rt, 10);
  rt.run([&](pg::ThreadCtx& ctx) {
    if (ctx.id() == 0) {
      std::vector<std::uint64_t> vals = {7, 8, 9};
      a.memput(ctx, a.block_begin(1), 3, vals.data());
    }
    ctx.barrier();
    std::vector<std::uint64_t> got(3);
    a.memget(ctx, a.block_begin(1), 3, got.data());
    EXPECT_EQ(got, (std::vector<std::uint64_t>{7, 8, 9}));
    ctx.barrier();
  });
  EXPECT_GT(rt.net().total_messages(), 0u);
}

TEST(GlobalArray, PutMinIsMonotone) {
  pg::Runtime rt(pg::Topology::cluster(1, 4),
                 m::CostParams::hps_cluster());
  pg::GlobalArray<std::uint64_t> a(rt, 4);
  rt.run([&](pg::ThreadCtx& ctx) {
    if (ctx.id() == 0) a.put(ctx, 0, 1000);
    ctx.barrier();
    // All threads race min-writes; the smallest must win.
    a.put_min(ctx, 0, static_cast<std::uint64_t>(100 - ctx.id()));
    ctx.barrier();
    EXPECT_EQ(a.get(ctx, 0), 97u);
    ctx.barrier();
  });
}

TEST(GlobalArray, LocalSpanViewsDistinctBlocks) {
  pg::Runtime rt(pg::Topology::cluster(1, 3),
                 m::CostParams::hps_cluster());
  pg::GlobalArray<std::uint64_t> a(rt, 9);
  rt.run([&](pg::ThreadCtx& ctx) {
    auto blk = a.local_span(ctx.id());
    for (auto& x : blk) x = static_cast<std::uint64_t>(ctx.id());
    ctx.barrier();
  });
  for (std::size_t i = 0; i < 9; ++i) EXPECT_EQ(a.raw(i), i / 3);
}

TEST(GlobalArray, SixteenByteRecords) {
  struct Rec {
    std::uint64_t a, b;
  };
  pg::Runtime rt(pg::Topology::cluster(1, 2),
                 m::CostParams::hps_cluster());
  pg::GlobalArray<Rec> arr(rt, 4);
  rt.run([&](pg::ThreadCtx& ctx) {
    auto blk = arr.local_span(ctx.id());
    for (auto& r : blk) r = {static_cast<std::uint64_t>(ctx.id()), 7};
    ctx.barrier();
  });
  EXPECT_EQ(arr.raw(0).a, 0u);
  EXPECT_EQ(arr.raw(3).a, 1u);
  EXPECT_EQ(arr.raw(3).b, 7u);
}

TEST(GlobalArray, RaceOnPutMinFromManyThreads) {
  pg::Runtime rt(pg::Topology::cluster(2, 4),
                 m::CostParams::hps_cluster());
  pg::GlobalArray<std::uint64_t> a(rt, 1);
  a.store_relaxed(0, UINT64_MAX);
  rt.run([&](pg::ThreadCtx& ctx) {
    for (int i = 0; i < 1000; ++i)
      a.put_min(ctx, 0,
                static_cast<std::uint64_t>(1000 * (ctx.id() + 1) - i));
    ctx.barrier();
  });
  EXPECT_EQ(a.load_relaxed(0), 1u);  // thread 0's last write: 1000*1-999
}
