// Silent-data-corruption defense (docs/ROBUSTNESS.md, "At-rest
// integrity"): the additive chunk digests, the mem-flip fault plan, the
// scrub/heal/rollback recovery chain in cc_coalesced and mst_pgas, and the
// promotion-time mirror validation.  The acceptance rule mirrors the chaos
// tests: under a seeded bit-flip plan the algorithms must detect the
// corruption and produce bit-identical results to a fault-free run; with a
// zero-flip plan (or scrubbing off) the modeled clock must not move at all.
//
// PGRAPH_CHAOS_SEED selects the fault seed (default 1); the scrub-chaos
// stage of scripts/run_checks.sh sweeps seeds 1..3.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <random>
#include <vector>

#include "core/cc_coalesced.hpp"
#include "core/mst_pgas.hpp"
#include "fault/fault.hpp"
#include "graph/certify.hpp"
#include "graph/generators.hpp"
#include "machine/cost_params.hpp"
#include "pgas/digest.hpp"
#include "pgas/global_array.hpp"
#include "pgas/replica.hpp"
#include "pgas/runtime.hpp"

namespace g = pgraph::graph;
namespace pg = pgraph::pgas;
namespace m = pgraph::machine;
namespace core = pgraph::core;
namespace flt = pgraph::fault;

namespace {

std::uint64_t chaos_seed() {
  const char* s = std::getenv("PGRAPH_CHAOS_SEED");
  return s != nullptr ? std::strtoull(s, nullptr, 10) : 1;
}

pg::Runtime make_rt() {
  return pg::Runtime(pg::Topology::cluster(4, 2),
                     m::CostParams::hps_cluster());
}

/// One exchange superstep: every thread sends one message to the next node.
void cross_node_round(pg::ThreadCtx& ctx, std::size_t bytes) {
  const int tpn = ctx.topo().threads_per_node;
  const int dst_node = (ctx.node() + 1) % ctx.nnodes();
  ctx.post_exchange_msg(dst_node * tpn, bytes);
  ctx.exchange_barrier();
}

// Flip epochs used by the recovery tests below.  Chosen from an epoch scan
// (every mem_flip_at in 2..120 against these exact graph/seed configs, all
// three chaos seeds): at these epochs the flip lands after the first scrub
// pass has baselined the label/weight partitions and before the run
// drains, so the scrubber must detect it, heal or roll back, and converge
// to the fault-free answer.
constexpr std::uint64_t kCcFlipEpoch = 12;
constexpr std::uint64_t kMstFlipEpoch = 12;

}  // namespace

// --- digest properties ---------------------------------------------------

TEST(ScrubDigest, OrderIndependentUnderWritePermutation) {
  // Two histories with the same final state, commits applied in opposite
  // orders, must maintain identical chunk sums (the scrubber's compare
  // would otherwise false-positive on benign reorderings).
  constexpr std::size_t kN = 64;
  std::vector<std::uint64_t> a(kN), b(kN);
  for (std::size_t i = 0; i < kN; ++i) a[i] = b[i] = 1000 + i;
  std::uint64_t sa =
      pg::chunk_digest(/*first=*/7, a.data(), sizeof(std::uint64_t), kN);
  std::uint64_t sb = sa;

  std::vector<std::pair<std::size_t, std::uint64_t>> writes;
  std::mt19937_64 rng(chaos_seed() * 977 + 5);
  for (int k = 0; k < 200; ++k)
    writes.emplace_back(rng() % kN, rng());
  // History A: in order.  Apply each write at most once per slot per
  // history by composing deltas against the *current* value.
  for (const auto& [i, v] : writes) {
    sa += pg::digest_delta(7 + i, &a[i], &v, sizeof(std::uint64_t));
    a[i] = v;
  }
  // History B: last-writer-wins per slot, applied in reverse slot order.
  std::vector<std::uint64_t> last(kN);
  std::vector<bool> touched(kN, false);
  for (const auto& [i, v] : writes) {
    last[i] = v;
    touched[i] = true;
  }
  for (std::size_t i = kN; i-- > 0;) {
    if (!touched[i]) continue;
    sb += pg::digest_delta(7 + i, &b[i], &last[i], sizeof(std::uint64_t));
    b[i] = last[i];
  }
  ASSERT_EQ(a, b);
  EXPECT_EQ(sa, sb);
  EXPECT_EQ(sa,
            pg::chunk_digest(7, a.data(), sizeof(std::uint64_t), kN));
}

TEST(ScrubDigest, IncrementalDeltaMatchesRecompute) {
  constexpr std::size_t kN = 128;
  std::vector<std::uint64_t> v(kN);
  std::mt19937_64 rng(42);
  for (auto& x : v) x = rng();
  std::uint64_t sum =
      pg::chunk_digest(/*first=*/0, v.data(), sizeof(std::uint64_t), kN);
  for (int k = 0; k < 500; ++k) {
    const std::size_t i = rng() % kN;
    const std::uint64_t nv = rng();
    sum += pg::digest_delta(i, &v[i], &nv, sizeof(std::uint64_t));
    v[i] = nv;
  }
  EXPECT_EQ(sum,
            pg::chunk_digest(0, v.data(), sizeof(std::uint64_t), kN));
}

TEST(ScrubDigest, SingleBitFlipChangesChunkSum) {
  // The detection primitive itself: any one-bit perturbation of the bytes
  // must move the sum (probabilistically certain for mix64; this checks
  // every bit of a small chunk so a systematic blind spot would surface).
  std::vector<std::uint64_t> v = {0, 1, 0xffffffffffffffffull, 42};
  const std::uint64_t sum =
      pg::chunk_digest(3, v.data(), sizeof(std::uint64_t), v.size());
  auto* bytes = reinterpret_cast<unsigned char*>(v.data());
  for (std::size_t byte = 0; byte < v.size() * 8; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      bytes[byte] ^= static_cast<unsigned char>(1u << bit);
      EXPECT_NE(sum, pg::chunk_digest(3, v.data(), sizeof(std::uint64_t),
                                      v.size()))
          << "byte " << byte << " bit " << bit;
      bytes[byte] ^= static_cast<unsigned char>(1u << bit);
    }
  }
}

// --- fault-plan parsing --------------------------------------------------

TEST(FaultConfig, ParseMemFlipKeys) {
  const auto c =
      flt::FaultConfig::parse("mem_flip_at=12,mem_flips=4,mem_flip_mirror=1",
                              chaos_seed());
  EXPECT_EQ(c.mem_flip_at, 12u);
  EXPECT_EQ(c.mem_flips, 4);
  EXPECT_TRUE(c.mem_flip_mirror);
  EXPECT_TRUE(c.mem_flips_enabled());
  EXPECT_TRUE(c.any_faults());
  // mem_flip_at=0 keeps the subsystem disabled even with a count set.
  EXPECT_FALSE(
      flt::FaultConfig::parse("mem_flip_at=0,mem_flips=4", 1)
          .mem_flips_enabled());
  // A zero-flip plan at a real epoch is also disabled (the invariance
  // tests below lean on this).
  EXPECT_FALSE(flt::FaultConfig::parse("mem_flip_at=9,mem_flips=0", 1)
                   .mem_flips_enabled());
  EXPECT_THROW(flt::FaultConfig::parse("mem_flips=-1", 1),
               std::invalid_argument);
  EXPECT_THROW(flt::FaultConfig::parse("mem_flip_mirror=2", 1),
               std::invalid_argument);
  // Mirror targeting without a flip epoch is a meaningless plan.
  EXPECT_THROW(flt::FaultConfig::parse("mem_flip_mirror=1", 1),
               std::invalid_argument);
}

TEST(FaultInjector, MemFlipDrawsAreDeterministic) {
  const auto cfg = flt::FaultConfig::parse("mem_flip_at=5,mem_flips=8", 9);
  flt::FaultInjector a(cfg), b(cfg);
  for (int k = 0; k < 8; ++k) {
    EXPECT_EQ(a.mem_flip_word(5, k, 0), b.mem_flip_word(5, k, 0));
    EXPECT_EQ(a.mem_flip_word(5, k, 1), b.mem_flip_word(5, k, 1));
  }
  // Different seeds draw different victims (with overwhelming probability).
  flt::FaultInjector c(flt::FaultConfig::parse("mem_flip_at=5", 10));
  EXPECT_NE(a.mem_flip_word(5, 0, 0), c.mem_flip_word(5, 0, 0));
}

// --- invariance: zero flips cost zero ------------------------------------

TEST(ScrubChaos, ZeroFlipPlanLeavesCcModeledTimeUnchanged) {
  const auto el = g::random_graph(200, 800, 20);
  core::ParCCResult clean;
  {
    pg::Runtime rt = make_rt();
    clean = core::cc_coalesced(rt, el, {});
  }
  // Scrubbing off, flip subsystem disabled: attaching the injector must
  // not perturb a single modeled nanosecond (the invariance rule).
  flt::FaultInjector inj(
      flt::FaultConfig::parse("mem_flip_at=0", chaos_seed()));
  pg::Runtime rt = make_rt();
  rt.set_fault_injector(&inj);
  const auto attached = core::cc_coalesced(rt, el, {});
  EXPECT_EQ(attached.labels, clean.labels);
  EXPECT_DOUBLE_EQ(attached.costs.modeled_ns, clean.costs.modeled_ns);
  const auto c = inj.counters();
  EXPECT_EQ(c.mem_flips, 0u);
  EXPECT_EQ(c.scrub_passes, 0u);
  EXPECT_EQ(c.scrub_detected, 0u);
  EXPECT_EQ(c.checkpoints, 0u);
}

TEST(ScrubChaos, ScrubbingWithoutFaultsIsDeterministicOverhead) {
  const auto el = g::random_graph(200, 800, 20);
  core::ParCCResult clean;
  {
    pg::Runtime rt = make_rt();
    clean = core::cc_coalesced(rt, el, {});
  }
  core::CcOptions sopt;
  sopt.scrub_interval = 2;
  const auto run_once = [&] {
    pg::Runtime rt = make_rt();
    return core::cc_coalesced(rt, el, sopt);
  };
  const auto a = run_once();
  const auto b = run_once();
  // Same labels as the unscrubbed run, at a strictly higher (and exactly
  // reproducible) modeled cost: the scrub walk is honest work.
  EXPECT_EQ(a.labels, clean.labels);
  EXPECT_EQ(b.labels, clean.labels);
  EXPECT_GT(a.costs.modeled_ns, clean.costs.modeled_ns);
  EXPECT_DOUBLE_EQ(a.costs.modeled_ns, b.costs.modeled_ns);
}

// --- detection + repair: bit-identical recovery --------------------------

TEST(ScrubChaos, CcFlipDetectedRepairedBitIdentical) {
  const auto el = g::random_graph(256, 1024, 21);
  core::CcOptions sopt;
  sopt.scrub_interval = 1;
  core::ParCCResult clean;
  {
    pg::Runtime rt = make_rt();
    clean = core::cc_coalesced(rt, el, sopt);
  }
  flt::FaultInjector inj(flt::FaultConfig::parse(
      "mem_flip_at=" + std::to_string(kCcFlipEpoch) + ",mem_flips=1",
      chaos_seed()));
  pg::Runtime rt = make_rt();
  rt.set_fault_injector(&inj);
  const auto chaotic = core::cc_coalesced(rt, el, sopt);
  EXPECT_EQ(chaotic.labels, clean.labels);
  EXPECT_EQ(chaotic.num_components, clean.num_components);
  const auto c = inj.counters();
  EXPECT_GE(c.mem_flips, 1u);
  EXPECT_GE(c.scrub_detected, 1u);
  EXPECT_GE(c.scrub_heals, 1u);
  EXPECT_GE(c.rollbacks, 1u);
  EXPECT_GT(c.scrub_passes, 0u);
  EXPECT_GT(chaotic.costs.modeled_ns, clean.costs.modeled_ns);
  // The repaired labels also pass the certifying verifier.
  const auto cert = g::certify_cc(el, chaotic.labels,
                                  chaotic.num_components, chaos_seed(),
                                  /*edge_samples=*/64);
  EXPECT_TRUE(cert.ok) << cert.detail;
}

TEST(ScrubChaos, MstFlipDetectedRepairedBitIdentical) {
  const auto el =
      g::with_random_weights(g::random_graph(256, 1024, 22), 23);
  core::MstOptions sopt;
  sopt.scrub_interval = 1;
  core::ParMstResult clean;
  {
    pg::Runtime rt = make_rt();
    clean = core::mst_pgas(rt, el, sopt);
  }
  flt::FaultInjector inj(flt::FaultConfig::parse(
      "mem_flip_at=" + std::to_string(kMstFlipEpoch) + ",mem_flips=1",
      chaos_seed()));
  pg::Runtime rt = make_rt();
  rt.set_fault_injector(&inj);
  auto chaotic = core::mst_pgas(rt, el, sopt);
  EXPECT_EQ(chaotic.total_weight, clean.total_weight);
  auto ce = chaotic.edges;
  auto ke = clean.edges;
  std::sort(ce.begin(), ce.end());
  std::sort(ke.begin(), ke.end());
  EXPECT_EQ(ce, ke);
  const auto c = inj.counters();
  EXPECT_GE(c.mem_flips, 1u);
  EXPECT_GE(c.scrub_detected, 1u);
  EXPECT_GE(c.rollbacks, 1u);
  const auto cert = g::certify_mst(el, chaotic.edges, chaotic.total_weight,
                                   chaos_seed(), /*cycle_samples=*/64);
  EXPECT_TRUE(cert.ok) << cert.detail;
}

// --- promotion-time mirror validation ------------------------------------

TEST(ScrubRuntime, PoisonedMirrorRefusesPromotion) {
  // Flip bits in the buddy mirrors (mem_flip_mirror=1) before a permanent
  // node loss: the shrink path must validate the mirror checksums, refuse
  // to promote the rotten bytes, and surface MemoryCorrupt instead of
  // silently resuming on them (the bugfix in try_shrink_after_exhaustion).
  flt::FaultInjector inj(flt::FaultConfig::parse(
      "loss_at=9,loss_node=2,mem_flip_at=5,mem_flips=32,mem_flip_mirror=1",
      chaos_seed()));
  pg::Runtime rt = make_rt();
  rt.set_fault_injector(&inj);
  pg::GlobalArray<std::uint64_t> arr(rt, 256);
  bool threw = false;
  try {
    rt.run([&](pg::ThreadCtx& ctx) {
      const int me = ctx.id();
      auto blk = arr.local_span(me);
      for (std::size_t i = 0; i < blk.size(); ++i) blk[i] = i;
      ctx.barrier();
      pg::replicate_to_buddy(ctx);
      for (int r = 0; r < 10; ++r) cross_node_round(ctx, 1024);
    });
  } catch (const flt::FaultError& e) {
    threw = true;
    EXPECT_EQ(e.kind(), flt::FaultKind::MemoryCorrupt);
  }
  ASSERT_TRUE(threw);
  const auto c = inj.counters();
  EXPECT_GT(c.mem_flips, 0u);
  EXPECT_EQ(c.promoted_bytes, 0u);  // nothing rotten was promoted
  // The dead node stays dead: no shrink happened.
  EXPECT_EQ(rt.topo().live_node_count(), 4);
}

TEST(ScrubRuntime, CleanMirrorStillPromotesUnderFlipPlan) {
  // Same loss plan but the flips land in the *resident* partitions, not
  // the mirrors: promotion must proceed exactly as in the plain loss test
  // (the mirror checksums still validate).
  flt::FaultInjector inj(flt::FaultConfig::parse(
      "loss_at=9,loss_node=2,mem_flip_at=900,mem_flips=1",
      chaos_seed()));
  pg::Runtime rt = make_rt();
  rt.set_fault_injector(&inj);
  pg::GlobalArray<std::uint64_t> arr(rt, 256);
  bool threw = false;
  try {
    rt.run([&](pg::ThreadCtx& ctx) {
      const int me = ctx.id();
      auto blk = arr.local_span(me);
      for (std::size_t i = 0; i < blk.size(); ++i) blk[i] = i;
      ctx.barrier();
      pg::replicate_to_buddy(ctx);
      for (int r = 0; r < 10; ++r) cross_node_round(ctx, 1024);
    });
  } catch (const flt::FaultError& e) {
    threw = true;
    EXPECT_EQ(e.kind(), flt::FaultKind::PermanentLoss);
  }
  ASSERT_TRUE(threw);
  EXPECT_EQ(rt.topo().live_node_count(), 3);
  EXPECT_GT(inj.counters().promoted_bytes, 0u);
}
