// Sequential CC baselines and the partition-comparison helpers.
#include <gtest/gtest.h>

#include "core/cc_seq.hpp"
#include "core/dsu.hpp"
#include "graph/generators.hpp"

namespace g = pgraph::graph;
namespace core = pgraph::core;

TEST(Dsu, BasicUnions) {
  core::Dsu d(6);
  EXPECT_TRUE(d.unite(0, 1));
  EXPECT_TRUE(d.unite(2, 3));
  EXPECT_FALSE(d.unite(1, 0));
  EXPECT_TRUE(d.unite(1, 3));
  EXPECT_EQ(d.find(0), d.find(3));
  EXPECT_NE(d.find(0), d.find(4));
  const auto labels = d.labels();
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_EQ(labels[4], 4u);
}

TEST(SamePartition, DetectsEqualAndUnequal) {
  using V = std::vector<std::uint64_t>;
  EXPECT_TRUE(core::same_partition(V{0, 0, 2}, V{5, 5, 9}));
  EXPECT_FALSE(core::same_partition(V{0, 0, 2}, V{5, 6, 9}));
  EXPECT_FALSE(core::same_partition(V{0, 1, 2}, V{5, 5, 9}));
  EXPECT_FALSE(core::same_partition(V{0}, V{0, 1}));
  EXPECT_TRUE(core::same_partition(V{}, V{}));
}

TEST(CcSeq, KnownStructures) {
  EXPECT_EQ(core::cc_dsu(g::path_graph(10)).num_components, 1u);
  EXPECT_EQ(core::cc_dsu(g::disjoint_cliques(5, 4)).num_components, 5u);
  EXPECT_EQ(core::cc_dsu(g::star_graph(100)).num_components, 1u);
  {
    g::EdgeList el;
    el.n = 7;  // no edges: 7 singletons
    EXPECT_EQ(core::cc_dsu(el).num_components, 7u);
  }
}

TEST(CcSeq, BfsMatchesDsuOnManyGraphs) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    for (const std::size_t n : {50u, 500u, 3000u}) {
      const auto el = g::random_graph(n, n, seed);  // sparse => many comps
      const auto a = core::cc_dsu(el);
      const auto b = core::cc_bfs(el);
      EXPECT_TRUE(core::same_partition(a.labels, b.labels))
          << "n=" << n << " seed=" << seed;
      EXPECT_EQ(a.num_components, b.num_components);
    }
  }
  const auto hy = g::hybrid_graph(2000, 6000, 4);
  EXPECT_TRUE(core::same_partition(core::cc_dsu(hy).labels,
                                   core::cc_bfs(hy).labels));
}

TEST(CcSeq, ModeledCostPopulatedWithModel) {
  const pgraph::machine::MemoryModel mm(
      pgraph::machine::CostParams::hps_cluster());
  const auto el = g::random_graph(1000, 4000, 5);
  EXPECT_GT(core::cc_dsu(el, &mm).modeled_ns, 0.0);
  EXPECT_GT(core::cc_bfs(el, &mm).modeled_ns, 0.0);
  EXPECT_DOUBLE_EQ(core::cc_dsu(el).modeled_ns, 0.0);
}

TEST(CountComponents, Counts) {
  EXPECT_EQ(core::count_components({1, 1, 2, 9}), 3u);
  EXPECT_EQ(core::count_components({}), 0u);
}
