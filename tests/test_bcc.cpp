// Biconnected components: Tarjan-Vishkin over the distributed substrate
// against sequential Hopcroft-Tarjan, plus known-answer structures.
#include <gtest/gtest.h>

#include "core/bcc.hpp"
#include "graph/generators.hpp"
#include "graph/permute.hpp"
#include "graph/rng.hpp"

namespace core = pgraph::core;
namespace g = pgraph::graph;
namespace pg = pgraph::pgas;
namespace m = pgraph::machine;

namespace {
pg::Runtime cluster(int nodes = 2, int threads = 2) {
  return pg::Runtime(pg::Topology::cluster(nodes, threads),
                     m::CostParams::hps_cluster());
}
}  // namespace

TEST(BccSequential, PathIsAllBridges) {
  const auto r = core::bcc_sequential(g::path_graph(6));
  EXPECT_EQ(r.num_blocks, 5u);  // every edge its own block
  // Interior vertices are articulation points; endpoints are not.
  EXPECT_EQ(r.is_articulation[0], 0);
  for (int v = 1; v <= 4; ++v) EXPECT_EQ(r.is_articulation[v], 1);
  EXPECT_EQ(r.is_articulation[5], 0);
}

TEST(BccSequential, CycleIsOneBlock) {
  const auto r = core::bcc_sequential(g::cycle_graph(7));
  EXPECT_EQ(r.num_blocks, 1u);
  for (const auto a : r.is_articulation) EXPECT_EQ(a, 0);
}

TEST(BccSequential, BowTie) {
  // Two triangles sharing vertex 2: two blocks, one articulation point.
  g::EdgeList el;
  el.n = 5;
  el.edges = {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}};
  const auto r = core::bcc_sequential(el);
  EXPECT_EQ(r.num_blocks, 2u);
  EXPECT_EQ(r.edge_block[0], r.edge_block[1]);
  EXPECT_EQ(r.edge_block[1], r.edge_block[2]);
  EXPECT_EQ(r.edge_block[3], r.edge_block[4]);
  EXPECT_NE(r.edge_block[0], r.edge_block[3]);
  for (int v = 0; v < 5; ++v)
    EXPECT_EQ(r.is_articulation[v], v == 2 ? 1 : 0) << v;
}

TEST(BccSequential, CliqueIsOneBlock) {
  const auto r = core::bcc_sequential(g::disjoint_cliques(1, 6));
  EXPECT_EQ(r.num_blocks, 1u);
}

TEST(BccSequential, ParallelEdgesFormABlock) {
  g::EdgeList el;
  el.n = 3;
  el.edges = {{0, 1}, {0, 1}, {1, 2}};
  const auto r = core::bcc_sequential(el);
  EXPECT_EQ(r.num_blocks, 2u);
  EXPECT_EQ(r.edge_block[0], r.edge_block[1]);  // the 2-cycle
  EXPECT_NE(r.edge_block[0], r.edge_block[2]);  // the bridge
  EXPECT_EQ(r.is_articulation[1], 1);
}

TEST(BccPgas, KnownStructuresMatchSequential) {
  auto rt = cluster();
  g::EdgeList bowtie;
  bowtie.n = 5;
  bowtie.edges = {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}};
  for (const auto& el :
       {g::path_graph(12), g::cycle_graph(9), g::disjoint_cliques(3, 5),
        g::grid_graph(4, 5), g::star_graph(8), bowtie}) {
    const auto seq = core::bcc_sequential(el);
    const auto par = core::bcc_pgas(rt, el);
    EXPECT_TRUE(core::same_blocks(par, seq)) << "n=" << el.n;
  }
}

class BccP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BccP, RandomGraphsMatchSequential) {
  const std::uint64_t seed = GetParam();
  g::Xoshiro256 rng(seed);
  auto rt = cluster(1 + static_cast<int>(seed % 3),
                    1 + static_cast<int>(seed % 2));
  for (int round = 0; round < 3; ++round) {
    const std::size_t n = 30 + rng.next_below(400);
    const std::size_t mm = std::min(n * (n - 1) / 2,
                                    1 + rng.next_below(3 * n));
    const auto el = g::random_graph(n, mm, seed * 31 + round);
    const auto seq = core::bcc_sequential(el);
    const auto par = core::bcc_pgas(rt, el);
    EXPECT_TRUE(core::same_blocks(par, seq))
        << "seed=" << seed << " n=" << n << " m=" << mm;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BccP,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(BccPgas, HybridGraph) {
  auto rt = cluster(4, 2);
  const auto el = g::hybrid_graph(800, 2400, 9);
  EXPECT_TRUE(core::same_blocks(core::bcc_pgas(rt, el),
                                core::bcc_sequential(el)));
}

TEST(BccPgas, SparseBarelyConnected) {
  // m ~ n: mostly trees with a few cycles — bridge-heavy.
  auto rt = cluster();
  const auto el = g::random_graph(500, 520, 10);
  const auto seq = core::bcc_sequential(el);
  const auto par = core::bcc_pgas(rt, el);
  EXPECT_TRUE(core::same_blocks(par, seq));
  EXPECT_GT(seq.num_blocks, 100u);  // sanity: bridge-heavy
}

TEST(BccPgas, RejectsSelfLoops) {
  g::EdgeList el;
  el.n = 2;
  el.edges = {{0, 0}};
  auto rt = cluster();
  EXPECT_THROW(core::bcc_pgas(rt, el), std::invalid_argument);
  EXPECT_THROW(core::bcc_sequential(el), std::invalid_argument);
}

TEST(BccPgas, EdgelessAndEmpty) {
  auto rt = cluster();
  g::EdgeList el;
  el.n = 4;
  const auto r = core::bcc_pgas(rt, el);
  EXPECT_EQ(r.num_blocks, 0u);
  for (const auto a : r.is_articulation) EXPECT_EQ(a, 0);
}

TEST(BccPgas, CostsAccumulateAcrossPhases) {
  auto rt = cluster();
  const auto el = g::random_graph(300, 900, 11);
  const auto r = core::bcc_pgas(rt, el);
  EXPECT_GT(r.costs.modeled_ns, 0.0);
  EXPECT_GT(r.costs.messages, 0u);
  EXPECT_GT(r.costs.barriers, 0u);
}
