// Unweighted spanning forest (Boruvka with unit weights + SetDMin).
#include <gtest/gtest.h>

#include "core/cc_seq.hpp"
#include "core/dsu.hpp"
#include "core/mst_pgas.hpp"
#include "graph/generators.hpp"

namespace core = pgraph::core;
namespace g = pgraph::graph;
namespace pg = pgraph::pgas;
namespace m = pgraph::machine;

namespace {

/// Validate that the edge ids form a spanning forest of el.
void check_forest(const g::EdgeList& el, const core::ParMstResult& r) {
  core::Dsu forest(el.n);
  std::vector<bool> used(el.m(), false);
  for (const auto id : r.edges) {
    ASSERT_LT(id, el.m());
    ASSERT_FALSE(used[id]) << "duplicate edge in forest";
    used[id] = true;
    ASSERT_TRUE(forest.unite(el.edges[id].u, el.edges[id].v))
        << "cycle in forest";
  }
  // Edge count == n - #components, i.e. it spans.
  const auto cc = core::cc_dsu(el);
  EXPECT_EQ(r.edges.size(), el.n - cc.num_components);
  // The forest induces the same partition.
  std::vector<std::uint64_t> flabels(el.n);
  for (std::size_t i = 0; i < el.n; ++i) flabels[i] = forest.find(i);
  EXPECT_TRUE(core::same_partition(flabels, cc.labels));
}

}  // namespace

TEST(SpanningTree, StructuredGraphs) {
  pg::Runtime rt(pg::Topology::cluster(2, 2), m::CostParams::hps_cluster());
  for (const auto& el :
       {g::path_graph(40), g::cycle_graph(33), g::star_graph(25),
        g::grid_graph(8, 9), g::disjoint_cliques(4, 5)}) {
    const auto r = core::spanning_tree_pgas(rt, el);
    check_forest(el, r);
    EXPECT_EQ(r.total_weight, 0u);  // unit weights are zero
  }
}

TEST(SpanningTree, RandomAndHybridAcrossTopologies) {
  for (const auto& [nodes, threads] :
       {std::pair{1, 1}, {1, 4}, {4, 2}}) {
    pg::Runtime rt(pg::Topology::cluster(nodes, threads),
                   m::CostParams::hps_cluster());
    check_forest(g::random_graph(500, 1500, 1),
                 core::spanning_tree_pgas(
                     rt, g::random_graph(500, 1500, 1)));
    check_forest(g::hybrid_graph(400, 1200, 2),
                 core::spanning_tree_pgas(
                     rt, g::hybrid_graph(400, 1200, 2)));
  }
}

TEST(SpanningTree, DeterministicSmallestIdEdges) {
  // With unit weights the SetDMin tie-break is the edge id, so the forest
  // is the id-lexicographically determined one; two runs agree exactly.
  pg::Runtime rt(pg::Topology::cluster(2, 3), m::CostParams::hps_cluster());
  const auto el = g::random_graph(300, 900, 5);
  auto a = core::spanning_tree_pgas(rt, el);
  auto b = core::spanning_tree_pgas(rt, el);
  std::sort(a.edges.begin(), a.edges.end());
  std::sort(b.edges.begin(), b.edges.end());
  EXPECT_EQ(a.edges, b.edges);
}

TEST(SpanningTree, EdgelessGraph) {
  pg::Runtime rt(pg::Topology::cluster(2, 1), m::CostParams::hps_cluster());
  g::EdgeList el;
  el.n = 9;
  const auto r = core::spanning_tree_pgas(rt, el);
  EXPECT_TRUE(r.edges.empty());
}
