// GetD / SetD / SetDMin (Algorithm 2) — semantics across topologies and
// optimization configurations, plus the cost-shape properties the paper's
// optimizations rely on.
#include <gtest/gtest.h>

#include <limits>
#include <numeric>

#include "collectives/getd.hpp"
#include "collectives/setd.hpp"
#include "graph/rng.hpp"
#include "pgas/global_array.hpp"

namespace pg = pgraph::pgas;
namespace m = pgraph::machine;
namespace c = pgraph::coll;
using pgraph::graph::Xoshiro256;

namespace {

struct Config {
  int nodes, threads;
  c::CollectiveOptions opt;
  const char* name;
};

std::ostream& operator<<(std::ostream& os, const Config& c) {
  return os << c.name << "(" << c.nodes << "x" << c.threads << ")";
}

std::vector<Config> configs() {
  std::vector<Config> out;
  const auto base = c::CollectiveOptions::base();
  const auto optd = c::CollectiveOptions::optimized(4);
  c::CollectiveOptions circ_only;
  circ_only.circular = true;
  c::CollectiveOptions off_only;
  off_only.offload = true;
  c::CollectiveOptions tp;
  tp.tprime = 6;
  auto hier = c::CollectiveOptions::optimized();
  hier.hierarchical = true;
  for (const auto& [nodes, threads] :
       {std::pair{1, 1}, {1, 4}, {2, 2}, {4, 2}}) {
    out.push_back({nodes, threads, base, "base"});
    out.push_back({nodes, threads, optd, "optimized"});
  }
  out.push_back({2, 3, circ_only, "circular-only"});
  out.push_back({2, 3, off_only, "offload-only"});
  out.push_back({2, 3, tp, "tprime-only"});
  out.push_back({2, 3, hier, "hierarchical"});
  out.push_back({4, 4, hier, "hierarchical-4x4"});
  out.push_back({1, 4, hier, "hierarchical-1node"});
  return out;
}

}  // namespace

class CollectivesP : public ::testing::TestWithParam<Config> {};

TEST_P(CollectivesP, GetDReturnsRequestedValues) {
  const Config cfg = GetParam();
  pg::Runtime rt(pg::Topology::cluster(cfg.nodes, cfg.threads),
                 m::CostParams::hps_cluster());
  const std::size_t n = 701;  // awkward size
  pg::GlobalArray<std::uint64_t> d(rt, n);
  for (std::size_t i = 0; i < n; ++i) d.raw(i) = 1000 + i * 3;
  d.raw(0) = 0;  // offload contract: D[0] == 0
  c::CollectiveContext cc(rt);

  rt.run([&](pg::ThreadCtx& ctx) {
    Xoshiro256 rng(100 + ctx.id());
    const std::size_t mreq = 97 + 13 * static_cast<std::size_t>(ctx.id());
    std::vector<std::uint64_t> idx(mreq);
    for (auto& x : idx) x = rng.next_below(n);
    idx[0] = 0;  // make sure the offload path triggers
    std::vector<std::uint64_t> out(mreq);
    c::CollWorkspace<std::uint64_t> ws;
    // Run twice: the second call exercises the id-cache path.
    for (int rep = 0; rep < 2; ++rep) {
      c::getd(ctx, d, idx, std::span<std::uint64_t>(out), cfg.opt, cc, ws,
              c::KnownElement{0, 0});
      // Verify against the closed form D was filled with — dereferencing
      // d.raw(idx[i]) here would itself be an affinity violation.
      for (std::size_t i = 0; i < mreq; ++i)
        ASSERT_EQ(out[i], idx[i] == 0 ? 0 : 1000 + idx[i] * 3)
            << "rep " << rep << " req " << i;
    }
  });
}

TEST_P(CollectivesP, SetDWritesAllValues) {
  const Config cfg = GetParam();
  pg::Runtime rt(pg::Topology::cluster(cfg.nodes, cfg.threads),
                 m::CostParams::hps_cluster());
  const std::size_t n = 512;
  const int s = rt.topo().total_threads();
  pg::GlobalArray<std::uint64_t> d(rt, n);
  for (std::size_t i = 0; i < n; ++i) d.raw(i) = UINT64_MAX;
  c::CollectiveContext cc(rt);

  // Disjoint targets: thread t writes indices congruent to t mod s.
  rt.run([&](pg::ThreadCtx& ctx) {
    std::vector<std::uint64_t> idx, val;
    for (std::size_t i = static_cast<std::size_t>(ctx.id()); i < n;
         i += static_cast<std::size_t>(s)) {
      idx.push_back(i);
      val.push_back(i * 7 + 1);
    }
    c::CollWorkspace<std::uint64_t> ws;
    c::setd(ctx, d, idx, std::span<const std::uint64_t>(val), cfg.opt, cc,
            ws);
    ctx.barrier();
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(d.raw(i), i * 7 + 1);
}

TEST_P(CollectivesP, SetDArbitraryPicksOneOfTheProposals) {
  const Config cfg = GetParam();
  pg::Runtime rt(pg::Topology::cluster(cfg.nodes, cfg.threads),
                 m::CostParams::hps_cluster());
  const std::size_t n = 64;
  pg::GlobalArray<std::uint64_t> d(rt, n);
  for (std::size_t i = 0; i < n; ++i) d.raw(i) = 0;
  c::CollectiveContext cc(rt);

  // Every thread writes its id+1 to every cell: result must be one of them.
  rt.run([&](pg::ThreadCtx& ctx) {
    std::vector<std::uint64_t> idx(n), val(n);
    std::iota(idx.begin(), idx.end(), 0);
    std::fill(val.begin(), val.end(),
              static_cast<std::uint64_t>(ctx.id()) + 1);
    c::CollWorkspace<std::uint64_t> ws;
    c::setd(ctx, d, idx, std::span<const std::uint64_t>(val), cfg.opt, cc,
            ws);
    ctx.barrier();
  });
  const std::uint64_t s = static_cast<std::uint64_t>(
      rt.topo().total_threads());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_GE(d.raw(i), 1u);
    EXPECT_LE(d.raw(i), s);
  }
}

TEST_P(CollectivesP, SetDMinKeepsTheMinimum) {
  const Config cfg = GetParam();
  pg::Runtime rt(pg::Topology::cluster(cfg.nodes, cfg.threads),
                 m::CostParams::hps_cluster());
  const std::size_t n = 128;
  pg::GlobalArray<std::uint64_t> d(rt, n);
  for (std::size_t i = 0; i < n; ++i) d.raw(i) = UINT64_MAX;
  c::CollectiveContext cc(rt);

  rt.run([&](pg::ThreadCtx& ctx) {
    // Thread t proposes (i * 100 + t) for every i; min over t is i*100.
    std::vector<std::uint64_t> idx(n), val(n);
    for (std::size_t i = 0; i < n; ++i) {
      idx[i] = i;
      val[i] = i * 100 + static_cast<std::uint64_t>(ctx.id());
    }
    c::CollWorkspace<std::uint64_t> ws;
    c::setd_min(ctx, d, idx, std::span<const std::uint64_t>(val), cfg.opt,
                cc, ws);
    ctx.barrier();
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(d.raw(i), i * 100);
}

namespace {
struct Rec {
  std::uint64_t key = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t info = 0;
  friend bool operator<(const Rec& a, const Rec& b) { return a.key < b.key; }
};
}  // namespace

TEST_P(CollectivesP, SetDMinTwoWordRecords) {
  const Config cfg = GetParam();
  pg::Runtime rt(pg::Topology::cluster(cfg.nodes, cfg.threads),
                 m::CostParams::hps_cluster());
  const std::size_t n = 40;
  pg::GlobalArray<Rec> d(rt, n);
  c::CollectiveContext cc(rt);

  rt.run([&](pg::ThreadCtx& ctx) {
    std::vector<std::uint64_t> idx(n);
    std::vector<Rec> val(n);
    for (std::size_t i = 0; i < n; ++i) {
      idx[i] = i;
      const std::uint64_t k = (static_cast<std::uint64_t>(ctx.id()) + i) %
                              static_cast<std::uint64_t>(ctx.nthreads());
      val[i] = {k, 1000 + k};  // info rides along with the winning key
    }
    c::CollWorkspace<Rec> ws;
    c::setd_min(ctx, d, idx, std::span<const Rec>(val), cfg.opt, cc, ws);
    ctx.barrier();
  });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(d.raw(i).key, 0u);
    EXPECT_EQ(d.raw(i).info, 1000u);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CollectivesP, ::testing::ValuesIn(configs()));

// --- cost-shape properties -------------------------------------------------

TEST(CollectiveCosts, CoalescedGetDBeatsFineGrainedGets) {
  const pg::Topology topo = pg::Topology::cluster(4, 2);
  const std::size_t n = 4096, mreq = 4096;

  pg::Runtime rt1(topo, m::CostParams::hps_cluster());
  pg::GlobalArray<std::uint64_t> d1(rt1, n);
  c::CollectiveContext cc(rt1);
  rt1.run([&](pg::ThreadCtx& ctx) {
    Xoshiro256 rng(5 + ctx.id());
    std::vector<std::uint64_t> idx(mreq), out(mreq);
    for (auto& x : idx) x = rng.next_below(n);
    c::CollWorkspace<std::uint64_t> ws;
    c::getd(ctx, d1, idx, std::span<std::uint64_t>(out),
            c::CollectiveOptions::base(), cc, ws);
  });

  pg::Runtime rt2(topo, m::CostParams::hps_cluster());
  pg::GlobalArray<std::uint64_t> d2(rt2, n);
  rt2.run([&](pg::ThreadCtx& ctx) {
    Xoshiro256 rng(5 + ctx.id());
    for (std::size_t i = 0; i < mreq; ++i) d2.get(ctx, rng.next_below(n));
    ctx.barrier();
  });

  // Communication coalescing: order(s) of magnitude fewer messages and a
  // large modeled-time gap (Figure 3 shows ~70x for full CC).
  EXPECT_LT(rt1.net().total_messages(), rt2.net().total_messages() / 20);
  EXPECT_LT(rt1.modeled_time_ns(), rt2.modeled_time_ns() / 5);
}

TEST(CollectiveCosts, CircularReducesExchangeTime) {
  const pg::Topology topo = pg::Topology::cluster(8, 1);
  const std::size_t n = 1 << 15, mreq = 1 << 15;
  const auto run_with = [&](bool circular) {
    pg::Runtime rt(topo, m::CostParams::hps_cluster());
    pg::GlobalArray<std::uint64_t> d(rt, n);
    c::CollectiveContext cc(rt);
    c::CollectiveOptions opt;
    opt.circular = circular;
    rt.run([&](pg::ThreadCtx& ctx) {
      Xoshiro256 rng(9 + ctx.id());
      std::vector<std::uint64_t> idx(mreq), out(mreq);
      for (auto& x : idx) x = rng.next_below(n);
      c::CollWorkspace<std::uint64_t> ws;
      for (int rep = 0; rep < 3; ++rep)
        c::getd(ctx, d, idx, std::span<std::uint64_t>(out), opt, cc, ws);
    });
    return rt.critical_stats().get(m::Cat::Comm);
  };
  const double ident = run_with(false);
  const double circ = run_with(true);
  EXPECT_GT(ident, 1.2 * circ);
}

TEST(CollectiveCosts, OffloadDropsHotspotTraffic) {
  const pg::Topology topo = pg::Topology::cluster(4, 1);
  const std::size_t n = 1 << 12, mreq = 1 << 14;
  const auto msgs_with = [&](bool offload) {
    pg::Runtime rt(topo, m::CostParams::hps_cluster());
    pg::GlobalArray<std::uint64_t> d(rt, n);
    d.raw(0) = 0;
    c::CollectiveContext cc(rt);
    c::CollectiveOptions opt;
    opt.offload = offload;
    rt.run([&](pg::ThreadCtx& ctx) {
      // 90% of requests hit index 0 — the pointer-jumping hotspot.
      Xoshiro256 rng(3 + ctx.id());
      std::vector<std::uint64_t> idx(mreq), out(mreq);
      for (auto& x : idx)
        x = rng.next_below(10) == 0 ? rng.next_below(n) : 0;
      c::CollWorkspace<std::uint64_t> ws;
      c::getd(ctx, d, idx, std::span<std::uint64_t>(out), opt, cc, ws,
              c::KnownElement{0, 0});
      // D is all zeros; checking via d.raw(idx[i]) in here would be an
      // affinity violation.
      for (std::size_t i = 0; i < mreq; ++i) ASSERT_EQ(out[i], 0u);
    });
    return rt.net().total_bytes();
  };
  EXPECT_LT(msgs_with(true), msgs_with(false) / 2);
}

TEST(CollectiveCosts, TprimeReducesOwnerGatherCopyTime) {
  // Larger t' shrinks the owner's gather working set (Copy category) —
  // the Figure 4 mechanism.
  const pg::Topology topo = pg::Topology::single_node(2);
  const std::size_t n = 1 << 20, mreq = 1 << 18;
  const auto copy_with = [&](int tprime) {
    m::CostParams p = m::CostParams::hps_cluster();
    p.cache_bytes = 1 << 16;
    pg::Runtime rt(topo, p);
    pg::GlobalArray<std::uint64_t> d(rt, n);
    c::CollectiveContext cc(rt);
    c::CollectiveOptions opt;
    opt.tprime = tprime;
    rt.run([&](pg::ThreadCtx& ctx) {
      Xoshiro256 rng(13 + ctx.id());
      std::vector<std::uint64_t> idx(mreq), out(mreq);
      for (auto& x : idx) x = rng.next_below(n);
      c::CollWorkspace<std::uint64_t> ws;
      c::getd(ctx, d, idx, std::span<std::uint64_t>(out), opt, cc, ws);
    });
    return rt.critical_stats().get(m::Cat::Copy);
  };
  EXPECT_GT(copy_with(1), 1.5 * copy_with(64));
}


TEST(CollectiveCosts, HierarchicalEliminatesTheFineMessageBurst) {
  // Section VI's future-work proposal: the SMatrix/PMatrix all-to-all
  // involves only p processes instead of s = p*t threads.
  const pg::Topology topo = pg::Topology::cluster(4, 4);
  const std::size_t n = 1 << 12, mreq = 1 << 12;
  const auto run_with = [&](bool hierarchical) {
    pg::Runtime rt(topo, m::CostParams::hps_cluster());
    pg::GlobalArray<std::uint64_t> d(rt, n);
    c::CollectiveContext cc(rt);
    auto opt = c::CollectiveOptions::optimized();
    opt.hierarchical = hierarchical;
    rt.run([&](pg::ThreadCtx& ctx) {
      Xoshiro256 rng(3 + ctx.id());
      std::vector<std::uint64_t> idx(mreq), out(mreq);
      for (auto& x : idx) x = rng.next_below(n);
      c::CollWorkspace<std::uint64_t> ws;
      c::getd(ctx, d, idx, std::span<std::uint64_t>(out), opt, cc, ws);
      // D is all zeros; d.raw(idx[i]) in here would be an affinity
      // violation.
      for (std::size_t i = 0; i < mreq; ++i) ASSERT_EQ(out[i], 0u);
    });
    return rt.net().fine_messages();
  };
  const auto flat = run_with(false);
  const auto hier = run_with(true);
  // Flat: ~2 * s^2 fine puts; hierarchical: none at all (the tiles travel
  // as coalesced messages).
  EXPECT_GT(flat, 200u);
  EXPECT_EQ(hier, 0u);
}

// --- degenerate batches ----------------------------------------------------
// Threads with an empty request vector must not charge exchange setup or
// emit zero-length messages once the counts matrix is already zero (the
// steady state of a stream that stopped touching a partition), and a
// nonzero -> zero transition must still publish the zero counts so owners
// never re-serve a stale batch.

#include "core/par_common.hpp"

namespace {

namespace core_ns = pgraph::core;

core_ns::RunCosts empty_setd_round(pg::Runtime& rt,
                                   pg::GlobalArray<std::uint64_t>& d,
                                   c::CollectiveContext& cc,
                                   const c::CollectiveOptions& opt) {
  rt.reset_costs();
  rt.run([&](pg::ThreadCtx& ctx) {
    const std::vector<std::uint64_t> idx;
    const std::vector<std::uint64_t> val;
    c::CollWorkspace<std::uint64_t> ws;
    c::setd_add(ctx, d, idx, std::span<const std::uint64_t>(val), opt, cc,
                ws);
  });
  return core_ns::collect_costs(rt, 0.0);
}

}  // namespace

TEST(CollectivesDegenerate, EmptyBatchesSkipExchangeAndNeverReapply) {
  for (const bool hier : {false, true}) {
    auto opt = c::CollectiveOptions::optimized(2);
    opt.hierarchical = hier;
    pg::Runtime rt(pg::Topology::cluster(4, 2),
                   m::CostParams::hps_cluster());
    pg::GlobalArray<std::uint64_t> d(rt, 512);
    c::CollectiveContext cc(rt);

    const auto busy_round = [&] {
      rt.run([&](pg::ThreadCtx& ctx) {
        const std::uint64_t me = static_cast<std::uint64_t>(ctx.id());
        const std::vector<std::uint64_t> idx = {me * 7, 300 + me};
        const std::vector<std::uint64_t> val = {1, 1};
        c::CollWorkspace<std::uint64_t> ws;
        c::setd_add(ctx, d, idx, std::span<const std::uint64_t>(val), opt,
                    cc, ws);
      });
    };
    const auto snapshot = [&] {
      const auto sp = d.raw_all();
      return std::vector<std::uint64_t>(sp.begin(), sp.end());
    };

    busy_round();
    const auto want = snapshot();

    // Transition round (counts nonzero -> zero): with a combining-add
    // payload, serving the stale batch would double every touched slot.
    const auto trans = empty_setd_round(rt, d, cc, opt);
    EXPECT_EQ(snapshot(), want) << "stale counts re-served (hier=" << hier
                                << ")";

    // Steady-state round (zero -> zero): the setup writes and the
    // zero-length exchange disappear entirely.
    const auto steady = empty_setd_round(rt, d, cc, opt);
    EXPECT_EQ(snapshot(), want);
    EXPECT_EQ(steady.messages, 0u) << "hier=" << hier;
    EXPECT_EQ(steady.fine_messages, 0u) << "hier=" << hier;
    EXPECT_LT(steady.modeled_ns, trans.modeled_ns) << "hier=" << hier;

    // Waking up again after the skip must go through the full path.
    busy_round();
    auto doubled = want;
    rt.run([&](pg::ThreadCtx&) {});  // no-op; values checked host-side
    for (std::size_t i = 0; i < doubled.size(); ++i)
      doubled[i] = 2 * want[i];
    EXPECT_EQ(snapshot(), doubled) << "hier=" << hier;
  }
}

TEST(CollectivesDegenerate, EmptyGetDSteadyStateIsMessageFree) {
  pg::Runtime rt(pg::Topology::cluster(4, 2), m::CostParams::hps_cluster());
  const std::size_t n = 256;
  pg::GlobalArray<std::uint64_t> d(rt, n);
  for (std::size_t i = 0; i < n; ++i) d.raw(i) = 10 * i;
  d.raw(0) = 0;
  c::CollectiveContext cc(rt);
  const auto opt = c::CollectiveOptions::optimized(2);

  std::vector<int> bad(8, 0);
  const auto round = [&](bool empty) {
    rt.reset_costs();
    rt.run([&](pg::ThreadCtx& ctx) {
      const std::uint64_t me = static_cast<std::uint64_t>(ctx.id());
      std::vector<std::uint64_t> idx;
      if (!empty) idx = {me * 13 % n, (me * 31 + 5) % n};
      std::vector<std::uint64_t> out(idx.size());
      c::CollWorkspace<std::uint64_t> ws;
      c::getd(ctx, d, idx, std::span<std::uint64_t>(out), opt, cc, ws);
      for (std::size_t k = 0; k < idx.size(); ++k)
        if (out[k] != 10 * idx[k])
          bad[static_cast<std::size_t>(ctx.id())] = 1;
    });
    return core_ns::collect_costs(rt, 0.0);
  };

  round(false);
  round(true);  // transition: zero counts land
  const auto steady = round(true);
  EXPECT_EQ(steady.messages, 0u);
  EXPECT_EQ(steady.fine_messages, 0u);
  round(false);  // wake up again: values must still be served fresh
  EXPECT_EQ(bad, std::vector<int>(8, 0));
}
