// Parallel CC variants (fine-grained, coalesced, SV, CGM) against the DSU
// ground truth, across topologies and optimization configurations.
#include <gtest/gtest.h>

#include "core/cc_coalesced.hpp"
#include "core/cc_fine.hpp"
#include "core/cc_seq.hpp"
#include "core/cgm_cc.hpp"
#include "graph/generators.hpp"
#include "graph/permute.hpp"

namespace g = pgraph::graph;
namespace pg = pgraph::pgas;
namespace m = pgraph::machine;
namespace core = pgraph::core;

namespace {

std::vector<g::EdgeList> test_graphs() {
  std::vector<g::EdgeList> out;
  out.push_back(g::path_graph(64));
  out.push_back(g::cycle_graph(63));
  out.push_back(g::star_graph(65));
  out.push_back(g::disjoint_cliques(6, 7));
  out.push_back(g::random_graph(500, 600, 1));
  out.push_back(g::random_graph(500, 2500, 2));
  out.push_back(g::hybrid_graph(600, 2400, 3));
  out.push_back(g::relabel(g::rmat_graph(256, 1024, 4),
                           g::random_permutation(256, 5)));
  g::EdgeList isolated;
  isolated.n = 37;  // edgeless
  out.push_back(std::move(isolated));
  g::EdgeList dupes = g::path_graph(20);
  dupes.edges.push_back({0, 1});  // duplicate + reversed duplicates
  dupes.edges.push_back({1, 0});
  dupes.edges.push_back({5, 4});
  out.push_back(std::move(dupes));
  return out;
}

struct Topo {
  int nodes, threads;
};
const Topo kTopos[] = {{1, 1}, {1, 4}, {2, 2}, {4, 2}, {3, 1}};

}  // namespace

TEST(CcFine, MatchesDsuAcrossTopologiesAndGraphs) {
  const auto graphs = test_graphs();
  for (const auto& [nodes, threads] : kTopos) {
    pg::Runtime rt(pg::Topology::cluster(nodes, threads),
                   m::CostParams::hps_cluster());
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      const auto truth = core::cc_dsu(graphs[gi]);
      const auto got = core::cc_fine_grained(rt, graphs[gi]);
      EXPECT_TRUE(core::same_partition(truth.labels, got.labels))
          << nodes << "x" << threads << " graph " << gi;
      EXPECT_EQ(got.num_components, truth.num_components);
      EXPECT_GT(got.iterations, 0);
    }
  }
}

TEST(CcCoalesced, MatchesDsuAcrossTopologiesAndGraphs) {
  const auto graphs = test_graphs();
  for (const auto& [nodes, threads] : kTopos) {
    pg::Runtime rt(pg::Topology::cluster(nodes, threads),
                   m::CostParams::hps_cluster());
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      const auto truth = core::cc_dsu(graphs[gi]);
      const auto got = core::cc_coalesced(rt, graphs[gi]);
      EXPECT_TRUE(core::same_partition(truth.labels, got.labels))
          << nodes << "x" << threads << " graph " << gi;
      EXPECT_EQ(got.num_components, truth.num_components);
    }
  }
}

struct CcOptCase {
  core::CcOptions opt;
  const char* name;
};

class CcOptionSweep : public ::testing::TestWithParam<CcOptCase> {};

TEST_P(CcOptionSweep, CorrectUnderEveryOptimizationConfig) {
  const auto& cfg = GetParam();
  pg::Runtime rt(pg::Topology::cluster(2, 3),
                 m::CostParams::hps_cluster());
  const auto el = g::random_graph(800, 2400, 17);
  const auto truth = core::cc_dsu(el);
  const auto got = core::cc_coalesced(rt, el, cfg.opt);
  EXPECT_TRUE(core::same_partition(truth.labels, got.labels)) << cfg.name;
}

namespace {
std::vector<CcOptCase> cc_opt_cases() {
  std::vector<CcOptCase> out;
  out.push_back({core::CcOptions::base(), "base"});
  out.push_back({core::CcOptions::optimized(1), "optimized-tp1"});
  out.push_back({core::CcOptions::optimized(8), "optimized-tp8"});
  core::CcOptions c = core::CcOptions::base();
  c.compact = true;
  out.push_back({c, "base+compact"});
  c = core::CcOptions::base();
  c.coll.offload = true;
  out.push_back({c, "base+offload"});
  c = core::CcOptions::base();
  c.coll.circular = true;
  out.push_back({c, "base+circular"});
  c = core::CcOptions::base();
  c.coll.id_cache = true;
  c.coll.id_direct = true;
  out.push_back({c, "base+id"});
  c = core::CcOptions::base();
  c.coll.localcpy = true;
  out.push_back({c, "base+localcpy"});
  c = core::CcOptions::base();
  c.coll.tprime = 16;
  out.push_back({c, "base+tp16"});
  return out;
}
}  // namespace

INSTANTIATE_TEST_SUITE_P(Sweep, CcOptionSweep,
                         ::testing::ValuesIn(cc_opt_cases()));

TEST(SvCoalesced, MatchesDsuAcrossTopologiesAndGraphs) {
  const auto graphs = test_graphs();
  for (const auto& [nodes, threads] : {Topo{1, 2}, Topo{2, 2}, Topo{4, 1}}) {
    pg::Runtime rt(pg::Topology::cluster(nodes, threads),
                   m::CostParams::hps_cluster());
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      const auto truth = core::cc_dsu(graphs[gi]);
      const auto got = core::sv_coalesced(rt, graphs[gi]);
      EXPECT_TRUE(core::same_partition(truth.labels, got.labels))
          << nodes << "x" << threads << " graph " << gi;
    }
  }
}

TEST(CgmCc, MatchesDsuAcrossTopologies) {
  const auto graphs = test_graphs();
  for (const auto& [nodes, threads] : kTopos) {
    pg::Runtime rt(pg::Topology::cluster(nodes, threads),
                   m::CostParams::hps_cluster());
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      const auto truth = core::cc_dsu(graphs[gi]);
      const auto got = core::cgm_cc(rt, graphs[gi]);
      EXPECT_TRUE(core::same_partition(truth.labels, got.labels))
          << nodes << "x" << threads << " graph " << gi;
    }
  }
}

TEST(CcParallel, DeterministicAcrossRepeatedRuns) {
  // Collective-based CC resolves ties deterministically for a fixed
  // configuration; two runs must agree exactly.
  pg::Runtime rt(pg::Topology::cluster(2, 2),
                 m::CostParams::hps_cluster());
  const auto el = g::random_graph(400, 1200, 23);
  const auto a = core::cc_coalesced(rt, el);
  const auto b = core::cc_coalesced(rt, el);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(CcParallel, CostTelemetryPopulated) {
  pg::Runtime rt(pg::Topology::cluster(2, 2),
                 m::CostParams::hps_cluster());
  const auto el = g::random_graph(400, 1200, 29);
  const auto r = core::cc_coalesced(rt, el);
  EXPECT_GT(r.costs.modeled_ns, 0.0);
  EXPECT_GT(r.costs.messages, 0u);
  EXPECT_GT(r.costs.barriers, 0u);
  EXPECT_GT(r.costs.breakdown.total(), 0.0);
  EXPECT_GT(r.costs.wall_s, 0.0);
}

TEST(CcParallel, SingleVertexAndTwoVertexGraphs) {
  pg::Runtime rt(pg::Topology::cluster(2, 1),
                 m::CostParams::hps_cluster());
  g::EdgeList one;
  one.n = 1;
  EXPECT_EQ(core::cc_coalesced(rt, one).num_components, 1u);
  g::EdgeList two;
  two.n = 2;
  two.edges = {{0, 1}};
  EXPECT_EQ(core::cc_coalesced(rt, two).num_components, 1u);
  EXPECT_EQ(core::cc_fine_grained(rt, two).num_components, 1u);
}
