// The Partitioning contract (docs/PARTITIONING.md): owner_of / local_of /
// global_of form a bijection on [0, n) for every scheme, storage slots are
// a permutation of the global indices, owner_of clamps wild inputs, and
// degree specs only bind to arrays of exactly n_hint elements.  The chaos
// tests are the partition counterpart of FaultChaos: buddy replication +
// permanent node loss must stay bit-identical under CYCLIC and the
// degree-aware cut, across fault seeds 1..3 — owners are THREAD ids, so
// every scheme composes with the post-shrink thread->node remap for free.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/cc_coalesced.hpp"
#include "fault/fault.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "machine/cost_params.hpp"
#include "partition/partitioning.hpp"
#include "pgas/runtime.hpp"

namespace g = pgraph::graph;
namespace pg = pgraph::pgas;
namespace m = pgraph::machine;
namespace core = pgraph::core;
namespace flt = pgraph::fault;
namespace part = pgraph::partition;

namespace {

/// Deterministic pseudo-degrees with a hub at vertex 0 (the skew the
/// degree-aware cut exists for).
std::vector<std::uint32_t> fake_degrees(std::size_t n) {
  std::vector<std::uint32_t> d(n);
  for (std::size_t i = 0; i < n; ++i)
    d[i] = i == 0 ? static_cast<std::uint32_t>(4 * n)
                  : static_cast<std::uint32_t>(1 + (i * 7) % 5);
  return d;
}

/// Every scheme instantiated for one (n, s) pair.
std::vector<part::Partitioning> all_schemes(std::size_t n, int s) {
  return {part::Partitioning::block(n, s), part::Partitioning::cyclic(n, s),
          part::Partitioning::block_cyclic(n, s, 1),
          part::Partitioning::block_cyclic(n, s, 3),
          part::Partitioning::block_cyclic(n, s, 16),
          part::Partitioning::degree_aware(n, s, fake_degrees(n))};
}

void expect_bijection(const part::Partitioning& p) {
  const std::size_t n = p.size();
  const int s = p.num_threads();
  SCOPED_TRACE(p.describe() + " n=" + std::to_string(n) +
               " s=" + std::to_string(s));
  // local sizes tile n, and part_begin is their prefix sum.
  std::size_t total = 0;
  for (int t = 0; t < s; ++t) {
    EXPECT_EQ(p.part_begin(t), total);
    total += p.local_size(t);
    EXPECT_LE(p.local_size(t), p.max_local_size());
  }
  EXPECT_EQ(total, n);
  // Round-trip both ways and slot permutation.
  std::vector<char> slot_seen(n, 0);
  for (std::uint64_t gidx = 0; gidx < n; ++gidx) {
    const int t = p.owner_of(gidx);
    ASSERT_GE(t, 0);
    ASSERT_LT(t, s);
    const std::uint64_t l = p.local_of(gidx);
    ASSERT_LT(l, p.local_size(t));
    EXPECT_EQ(p.global_of(t, l), gidx);
    const std::size_t slot = p.slot_of(gidx);
    ASSERT_LT(slot, n);
    EXPECT_EQ(slot_seen[slot], 0) << "slot " << slot << " hit twice";
    slot_seen[slot] = 1;
    if (p.is_identity()) {
      EXPECT_EQ(slot, gidx);
    }
  }
  // Inverse direction: every (t, l) maps back.
  for (int t = 0; t < s; ++t)
    for (std::uint64_t l = 0; l < p.local_size(t); ++l) {
      const std::uint64_t gidx = p.global_of(t, l);
      ASSERT_LT(gidx, n);
      EXPECT_EQ(p.owner_of(gidx), t);
      EXPECT_EQ(p.local_of(gidx), l);
    }
}

std::uint64_t chaos_seed() {
  const char* s = std::getenv("PGRAPH_CHAOS_SEED");
  return s != nullptr ? std::strtoull(s, nullptr, 10) : 1;
}

pg::Runtime make_rt() {
  return pg::Runtime(pg::Topology::cluster(4, 2),
                     m::CostParams::hps_cluster());
}

}  // namespace

// --- bijection property --------------------------------------------------

TEST(Partitioning, BijectionAcrossOddSizesAndThreadCounts) {
  // Odd n (not multiples of s), n < s, n == 0/1, and the 1-thread cluster.
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                              std::size_t{7}, std::size_t{97},
                              std::size_t{256}, std::size_t{1000}})
    for (const int s : {1, 2, 3, 7, 8})
      for (const auto& p : all_schemes(n, s)) expect_bijection(p);
}

TEST(Partitioning, OwnerClampsWildIndices) {
  // owner_of is total: corruption-derived wild indices still land on a
  // valid thread (the caller's local_size bounds check rejects them).
  for (const auto& p : all_schemes(97, 7))
    for (const std::uint64_t w :
         {std::uint64_t{97}, std::uint64_t{1000}, ~std::uint64_t{0} / 2}) {
      EXPECT_GE(p.owner_of(w), 0) << p.describe();
      EXPECT_LT(p.owner_of(w), 7) << p.describe();
    }
}

TEST(Partitioning, BlockIsTheHistoricalLayout) {
  // Bit-compatibility anchor: ceil(n/s) blocks, identity storage.
  const auto p = part::Partitioning::block(10, 4);
  EXPECT_TRUE(p.is_block());
  EXPECT_TRUE(p.is_identity());
  EXPECT_EQ(p.max_local_size(), 3u);
  EXPECT_EQ(p.owner_of(0), 0);
  EXPECT_EQ(p.owner_of(2), 0);
  EXPECT_EQ(p.owner_of(3), 1);
  EXPECT_EQ(p.owner_of(9), 3);
  EXPECT_EQ(p.local_size(3), 1u);  // trailing short block
}

TEST(Partitioning, DegreeCutsSplitTheHub) {
  // With one vertex holding ~4n weight, the block cut would give thread 0
  // the hub plus a full 1/s of the vertices; the degree cut must hand
  // thread 0 a strictly smaller range.
  const std::size_t n = 1000;
  const int s = 4;
  const auto deg = fake_degrees(n);
  const auto p = part::Partitioning::degree_aware(n, s, deg);
  EXPECT_TRUE(p.is_identity());  // contiguous ranges
  EXPECT_LT(p.local_size(0), n / static_cast<std::size_t>(s));
}

// --- spec parsing and gating ---------------------------------------------

TEST(PartitionSpec, ParseRoundTripsAndRejectsGarbage) {
  part::PartitionSpec sp;
  for (const char* ok : {"block", "cyclic", "block_cyclic:16", "degree"}) {
    EXPECT_EQ(part::PartitionSpec::parse(ok, sp), "") << ok;
    EXPECT_EQ(sp.describe(), ok);
  }
  for (const char* bad :
       {"", "foo", "block_cyclic", "block_cyclic:", "block_cyclic:0",
        "block_cyclic:-4", "block_cyclic:nan", "block_cyclic:1.5",
        "block_cyclic:x", "cyclic:4"})
    EXPECT_NE(part::PartitionSpec::parse(bad, sp), "") << "'" << bad << "'";
}

TEST(PartitionSpec, DegreeSpecBindsOnlyToMatchingSize) {
  part::PartitionSpec sp;
  ASSERT_EQ(part::PartitionSpec::parse("degree", sp), "");
  sp = sp.with_degrees(fake_degrees(100));
  EXPECT_EQ(sp.n_hint, 100u);
  // Matching size: the cut applies.
  EXPECT_EQ(part::Partitioning::make(sp, 100, 4).kind(),
            part::PartitionKind::Degree);
  // Any other size (auxiliary arrays): block fallback.
  EXPECT_TRUE(part::Partitioning::make(sp, 64, 4).is_block());
  EXPECT_TRUE(part::Partitioning::make(sp, 101, 4).is_block());
  // An unfilled degree spec never binds.
  part::PartitionSpec empty;
  ASSERT_EQ(part::PartitionSpec::parse("degree", empty), "");
  EXPECT_TRUE(part::Partitioning::make(empty, 100, 4).is_block());
}

// --- post-shrink composition ----------------------------------------------

TEST(Partitioning, OwnersSurviveNodeLossRemap) {
  // A permanent node loss shrinks the thread->node map, never the thread
  // ids, so the partitioning a runtime hands out is unchanged after the
  // shrink — the remap composes underneath owner_of.
  const std::size_t n = 97;
  part::PartitionSpec sp;
  ASSERT_EQ(part::PartitionSpec::parse("cyclic", sp), "");

  flt::FaultInjector inj(
      flt::FaultConfig::parse("loss_at=24,loss_node=2", chaos_seed()));
  pg::Runtime rt = make_rt();
  rt.set_partition_spec(sp);
  rt.set_fault_injector(&inj);
  const part::Partitioning before = rt.make_partitioning(n);

  const auto el = g::random_graph(n, 400, 15);
  (void)core::cc_coalesced(rt, el, {});  // drives the loss + promotion
  ASSERT_EQ(rt.topo().live_node_count(), 3);

  const part::Partitioning after = rt.make_partitioning(n);
  for (std::uint64_t gidx = 0; gidx < n; ++gidx) {
    EXPECT_EQ(after.owner_of(gidx), before.owner_of(gidx));
    EXPECT_EQ(after.local_of(gidx), before.local_of(gidx));
  }
}

// --- chaos: loss + replication under non-block schemes --------------------

TEST(PartitionChaos, CcLossBitIdenticalUnderCyclicAndDegree) {
  const std::size_t n = 256;
  const auto el = g::random_graph(n, 1024, 15);
  const auto deg = g::degree_histogram(el);

  // Reference labels from the default block layout, fault-free.
  core::ParCCResult block_clean;
  {
    pg::Runtime rt = make_rt();
    block_clean = core::cc_coalesced(rt, el, {});
  }

  for (const char* scheme : {"cyclic", "degree"}) {
    part::PartitionSpec sp;
    ASSERT_EQ(part::PartitionSpec::parse(scheme, sp), "");
    if (sp.kind == part::PartitionKind::Degree) sp = sp.with_degrees(deg);

    // Fault-free run under the scheme: labels must match block exactly
    // (the layout changes where bytes live, never what they say).
    core::ParCCResult clean;
    {
      pg::Runtime rt = make_rt();
      rt.set_partition_spec(sp);
      clean = core::cc_coalesced(rt, el, {});
    }
    EXPECT_EQ(clean.labels, block_clean.labels) << scheme;
    EXPECT_EQ(clean.num_components, block_clean.num_components) << scheme;

    // Buddy replication + permanent node loss across fault seeds 1..3.
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      SCOPED_TRACE(std::string(scheme) + " fault seed " +
                   std::to_string(seed));
      flt::FaultInjector inj(
          flt::FaultConfig::parse("loss_at=24", seed));
      pg::Runtime rt = make_rt();
      rt.set_partition_spec(sp);
      rt.set_fault_injector(&inj);
      const auto chaotic = core::cc_coalesced(rt, el, {});
      EXPECT_EQ(chaotic.labels, block_clean.labels);
      EXPECT_EQ(chaotic.num_components, block_clean.num_components);
      const auto c = inj.counters();
      EXPECT_EQ(c.loss_events, 1u);
      EXPECT_GE(c.replications, 1u);
      EXPECT_GT(c.replica_bytes, 0u);
      EXPECT_GT(c.promoted_bytes, 0u);
      EXPECT_EQ(rt.topo().live_node_count(), 3);
      EXPECT_GT(chaotic.costs.modeled_ns, clean.costs.modeled_ns);
    }
  }
}
