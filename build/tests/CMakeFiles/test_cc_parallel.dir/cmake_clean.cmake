file(REMOVE_RECURSE
  "CMakeFiles/test_cc_parallel.dir/test_cc_parallel.cpp.o"
  "CMakeFiles/test_cc_parallel.dir/test_cc_parallel.cpp.o.d"
  "test_cc_parallel"
  "test_cc_parallel.pdb"
  "test_cc_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cc_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
