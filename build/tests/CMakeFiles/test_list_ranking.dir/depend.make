# Empty dependencies file for test_list_ranking.
# This may be replaced when dependencies are built.
