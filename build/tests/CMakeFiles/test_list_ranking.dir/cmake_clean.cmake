file(REMOVE_RECURSE
  "CMakeFiles/test_list_ranking.dir/test_list_ranking.cpp.o"
  "CMakeFiles/test_list_ranking.dir/test_list_ranking.cpp.o.d"
  "test_list_ranking"
  "test_list_ranking.pdb"
  "test_list_ranking[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_list_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
