# Empty compiler generated dependencies file for test_upc.
# This may be replaced when dependencies are built.
