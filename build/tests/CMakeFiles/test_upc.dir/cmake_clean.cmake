file(REMOVE_RECURSE
  "CMakeFiles/test_upc.dir/test_upc.cpp.o"
  "CMakeFiles/test_upc.dir/test_upc.cpp.o.d"
  "test_upc"
  "test_upc.pdb"
  "test_upc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_upc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
