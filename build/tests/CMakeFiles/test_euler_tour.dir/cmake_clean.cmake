file(REMOVE_RECURSE
  "CMakeFiles/test_euler_tour.dir/test_euler_tour.cpp.o"
  "CMakeFiles/test_euler_tour.dir/test_euler_tour.cpp.o.d"
  "test_euler_tour"
  "test_euler_tour.pdb"
  "test_euler_tour[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_euler_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
