# Empty dependencies file for test_euler_tour.
# This may be replaced when dependencies are built.
