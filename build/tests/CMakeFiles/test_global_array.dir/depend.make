# Empty dependencies file for test_global_array.
# This may be replaced when dependencies are built.
