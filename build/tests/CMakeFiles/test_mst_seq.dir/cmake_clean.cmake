file(REMOVE_RECURSE
  "CMakeFiles/test_mst_seq.dir/test_mst_seq.cpp.o"
  "CMakeFiles/test_mst_seq.dir/test_mst_seq.cpp.o.d"
  "test_mst_seq"
  "test_mst_seq.pdb"
  "test_mst_seq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mst_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
