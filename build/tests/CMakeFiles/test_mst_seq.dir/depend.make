# Empty dependencies file for test_mst_seq.
# This may be replaced when dependencies are built.
