# Empty dependencies file for test_phase_stats.
# This may be replaced when dependencies are built.
