file(REMOVE_RECURSE
  "CMakeFiles/test_phase_stats.dir/test_phase_stats.cpp.o"
  "CMakeFiles/test_phase_stats.dir/test_phase_stats.cpp.o.d"
  "test_phase_stats"
  "test_phase_stats.pdb"
  "test_phase_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phase_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
