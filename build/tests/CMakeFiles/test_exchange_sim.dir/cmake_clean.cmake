file(REMOVE_RECURSE
  "CMakeFiles/test_exchange_sim.dir/test_exchange_sim.cpp.o"
  "CMakeFiles/test_exchange_sim.dir/test_exchange_sim.cpp.o.d"
  "test_exchange_sim"
  "test_exchange_sim.pdb"
  "test_exchange_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exchange_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
