file(REMOVE_RECURSE
  "CMakeFiles/test_cc_seq.dir/test_cc_seq.cpp.o"
  "CMakeFiles/test_cc_seq.dir/test_cc_seq.cpp.o.d"
  "test_cc_seq"
  "test_cc_seq.pdb"
  "test_cc_seq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cc_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
