# Empty compiler generated dependencies file for test_bcc.
# This may be replaced when dependencies are built.
