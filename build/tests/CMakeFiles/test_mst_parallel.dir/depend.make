# Empty dependencies file for test_mst_parallel.
# This may be replaced when dependencies are built.
