file(REMOVE_RECURSE
  "CMakeFiles/test_mst_parallel.dir/test_mst_parallel.cpp.o"
  "CMakeFiles/test_mst_parallel.dir/test_mst_parallel.cpp.o.d"
  "test_mst_parallel"
  "test_mst_parallel.pdb"
  "test_mst_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mst_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
