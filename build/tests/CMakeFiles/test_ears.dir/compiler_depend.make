# Empty compiler generated dependencies file for test_ears.
# This may be replaced when dependencies are built.
