file(REMOVE_RECURSE
  "CMakeFiles/test_ears.dir/test_ears.cpp.o"
  "CMakeFiles/test_ears.dir/test_ears.cpp.o.d"
  "test_ears"
  "test_ears.pdb"
  "test_ears[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ears.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
