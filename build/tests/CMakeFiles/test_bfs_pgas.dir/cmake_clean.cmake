file(REMOVE_RECURSE
  "CMakeFiles/test_bfs_pgas.dir/test_bfs_pgas.cpp.o"
  "CMakeFiles/test_bfs_pgas.dir/test_bfs_pgas.cpp.o.d"
  "test_bfs_pgas"
  "test_bfs_pgas.pdb"
  "test_bfs_pgas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bfs_pgas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
