# Empty dependencies file for test_bfs_pgas.
# This may be replaced when dependencies are built.
