file(REMOVE_RECURSE
  "CMakeFiles/test_graph_util.dir/test_graph_util.cpp.o"
  "CMakeFiles/test_graph_util.dir/test_graph_util.cpp.o.d"
  "test_graph_util"
  "test_graph_util.pdb"
  "test_graph_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
