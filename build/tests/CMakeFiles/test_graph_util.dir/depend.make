# Empty dependencies file for test_graph_util.
# This may be replaced when dependencies are built.
