# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_cache_sim[1]_include.cmake")
include("/root/repo/build/tests/test_exchange_sim[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_global_array[1]_include.cmake")
include("/root/repo/build/tests/test_generators[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_collectives[1]_include.cmake")
include("/root/repo/build/tests/test_cc_seq[1]_include.cmake")
include("/root/repo/build/tests/test_mst_seq[1]_include.cmake")
include("/root/repo/build/tests/test_cc_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_mst_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_graph_util[1]_include.cmake")
include("/root/repo/build/tests/test_list_ranking[1]_include.cmake")
include("/root/repo/build/tests/test_bfs_pgas[1]_include.cmake")
include("/root/repo/build/tests/test_spanning_tree[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_upc[1]_include.cmake")
include("/root/repo/build/tests/test_cache_hierarchy[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_graph_stats[1]_include.cmake")
include("/root/repo/build/tests/test_euler_tour[1]_include.cmake")
include("/root/repo/build/tests/test_phase_stats[1]_include.cmake")
include("/root/repo/build/tests/test_bcc[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_ears[1]_include.cmake")
