file(REMOVE_RECURSE
  "libpgraph_pgas.a"
)
