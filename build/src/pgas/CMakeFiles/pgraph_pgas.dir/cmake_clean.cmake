file(REMOVE_RECURSE
  "CMakeFiles/pgraph_pgas.dir/runtime.cpp.o"
  "CMakeFiles/pgraph_pgas.dir/runtime.cpp.o.d"
  "libpgraph_pgas.a"
  "libpgraph_pgas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgraph_pgas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
