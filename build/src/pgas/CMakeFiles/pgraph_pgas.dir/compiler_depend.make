# Empty compiler generated dependencies file for pgraph_pgas.
# This may be replaced when dependencies are built.
