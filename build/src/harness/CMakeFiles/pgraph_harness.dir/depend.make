# Empty dependencies file for pgraph_harness.
# This may be replaced when dependencies are built.
