file(REMOVE_RECURSE
  "CMakeFiles/pgraph_harness.dir/args.cpp.o"
  "CMakeFiles/pgraph_harness.dir/args.cpp.o.d"
  "CMakeFiles/pgraph_harness.dir/table.cpp.o"
  "CMakeFiles/pgraph_harness.dir/table.cpp.o.d"
  "libpgraph_harness.a"
  "libpgraph_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgraph_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
