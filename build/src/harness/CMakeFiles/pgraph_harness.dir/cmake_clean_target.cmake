file(REMOVE_RECURSE
  "libpgraph_harness.a"
)
