# Empty compiler generated dependencies file for pgraph_machine.
# This may be replaced when dependencies are built.
