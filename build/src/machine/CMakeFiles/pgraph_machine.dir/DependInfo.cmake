
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/cache_sim.cpp" "src/machine/CMakeFiles/pgraph_machine.dir/cache_sim.cpp.o" "gcc" "src/machine/CMakeFiles/pgraph_machine.dir/cache_sim.cpp.o.d"
  "/root/repo/src/machine/cost_params.cpp" "src/machine/CMakeFiles/pgraph_machine.dir/cost_params.cpp.o" "gcc" "src/machine/CMakeFiles/pgraph_machine.dir/cost_params.cpp.o.d"
  "/root/repo/src/machine/exchange_sim.cpp" "src/machine/CMakeFiles/pgraph_machine.dir/exchange_sim.cpp.o" "gcc" "src/machine/CMakeFiles/pgraph_machine.dir/exchange_sim.cpp.o.d"
  "/root/repo/src/machine/network_model.cpp" "src/machine/CMakeFiles/pgraph_machine.dir/network_model.cpp.o" "gcc" "src/machine/CMakeFiles/pgraph_machine.dir/network_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
