file(REMOVE_RECURSE
  "libpgraph_machine.a"
)
