file(REMOVE_RECURSE
  "CMakeFiles/pgraph_machine.dir/cache_sim.cpp.o"
  "CMakeFiles/pgraph_machine.dir/cache_sim.cpp.o.d"
  "CMakeFiles/pgraph_machine.dir/cost_params.cpp.o"
  "CMakeFiles/pgraph_machine.dir/cost_params.cpp.o.d"
  "CMakeFiles/pgraph_machine.dir/exchange_sim.cpp.o"
  "CMakeFiles/pgraph_machine.dir/exchange_sim.cpp.o.d"
  "CMakeFiles/pgraph_machine.dir/network_model.cpp.o"
  "CMakeFiles/pgraph_machine.dir/network_model.cpp.o.d"
  "libpgraph_machine.a"
  "libpgraph_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgraph_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
