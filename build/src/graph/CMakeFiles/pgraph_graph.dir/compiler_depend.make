# Empty compiler generated dependencies file for pgraph_graph.
# This may be replaced when dependencies are built.
