file(REMOVE_RECURSE
  "libpgraph_graph.a"
)
