file(REMOVE_RECURSE
  "CMakeFiles/pgraph_graph.dir/csr.cpp.o"
  "CMakeFiles/pgraph_graph.dir/csr.cpp.o.d"
  "CMakeFiles/pgraph_graph.dir/edge_list.cpp.o"
  "CMakeFiles/pgraph_graph.dir/edge_list.cpp.o.d"
  "CMakeFiles/pgraph_graph.dir/generators.cpp.o"
  "CMakeFiles/pgraph_graph.dir/generators.cpp.o.d"
  "CMakeFiles/pgraph_graph.dir/io.cpp.o"
  "CMakeFiles/pgraph_graph.dir/io.cpp.o.d"
  "CMakeFiles/pgraph_graph.dir/permute.cpp.o"
  "CMakeFiles/pgraph_graph.dir/permute.cpp.o.d"
  "CMakeFiles/pgraph_graph.dir/stats.cpp.o"
  "CMakeFiles/pgraph_graph.dir/stats.cpp.o.d"
  "libpgraph_graph.a"
  "libpgraph_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgraph_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
