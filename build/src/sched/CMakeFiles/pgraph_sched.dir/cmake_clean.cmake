file(REMOVE_RECURSE
  "CMakeFiles/pgraph_sched.dir/access_sched.cpp.o"
  "CMakeFiles/pgraph_sched.dir/access_sched.cpp.o.d"
  "libpgraph_sched.a"
  "libpgraph_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgraph_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
