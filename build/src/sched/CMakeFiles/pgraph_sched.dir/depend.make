# Empty dependencies file for pgraph_sched.
# This may be replaced when dependencies are built.
