file(REMOVE_RECURSE
  "libpgraph_sched.a"
)
