file(REMOVE_RECURSE
  "libpgraph_core.a"
)
