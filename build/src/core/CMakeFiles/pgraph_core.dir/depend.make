# Empty dependencies file for pgraph_core.
# This may be replaced when dependencies are built.
