
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bcc.cpp" "src/core/CMakeFiles/pgraph_core.dir/bcc.cpp.o" "gcc" "src/core/CMakeFiles/pgraph_core.dir/bcc.cpp.o.d"
  "/root/repo/src/core/bfs_pgas.cpp" "src/core/CMakeFiles/pgraph_core.dir/bfs_pgas.cpp.o" "gcc" "src/core/CMakeFiles/pgraph_core.dir/bfs_pgas.cpp.o.d"
  "/root/repo/src/core/cc_coalesced.cpp" "src/core/CMakeFiles/pgraph_core.dir/cc_coalesced.cpp.o" "gcc" "src/core/CMakeFiles/pgraph_core.dir/cc_coalesced.cpp.o.d"
  "/root/repo/src/core/cc_fine.cpp" "src/core/CMakeFiles/pgraph_core.dir/cc_fine.cpp.o" "gcc" "src/core/CMakeFiles/pgraph_core.dir/cc_fine.cpp.o.d"
  "/root/repo/src/core/cc_seq.cpp" "src/core/CMakeFiles/pgraph_core.dir/cc_seq.cpp.o" "gcc" "src/core/CMakeFiles/pgraph_core.dir/cc_seq.cpp.o.d"
  "/root/repo/src/core/cgm_cc.cpp" "src/core/CMakeFiles/pgraph_core.dir/cgm_cc.cpp.o" "gcc" "src/core/CMakeFiles/pgraph_core.dir/cgm_cc.cpp.o.d"
  "/root/repo/src/core/ears.cpp" "src/core/CMakeFiles/pgraph_core.dir/ears.cpp.o" "gcc" "src/core/CMakeFiles/pgraph_core.dir/ears.cpp.o.d"
  "/root/repo/src/core/euler_tour.cpp" "src/core/CMakeFiles/pgraph_core.dir/euler_tour.cpp.o" "gcc" "src/core/CMakeFiles/pgraph_core.dir/euler_tour.cpp.o.d"
  "/root/repo/src/core/list_ranking.cpp" "src/core/CMakeFiles/pgraph_core.dir/list_ranking.cpp.o" "gcc" "src/core/CMakeFiles/pgraph_core.dir/list_ranking.cpp.o.d"
  "/root/repo/src/core/mst_pgas.cpp" "src/core/CMakeFiles/pgraph_core.dir/mst_pgas.cpp.o" "gcc" "src/core/CMakeFiles/pgraph_core.dir/mst_pgas.cpp.o.d"
  "/root/repo/src/core/mst_seq.cpp" "src/core/CMakeFiles/pgraph_core.dir/mst_seq.cpp.o" "gcc" "src/core/CMakeFiles/pgraph_core.dir/mst_seq.cpp.o.d"
  "/root/repo/src/core/mst_smp.cpp" "src/core/CMakeFiles/pgraph_core.dir/mst_smp.cpp.o" "gcc" "src/core/CMakeFiles/pgraph_core.dir/mst_smp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pgas/CMakeFiles/pgraph_pgas.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pgraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/pgraph_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/pgraph_machine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
