file(REMOVE_RECURSE
  "CMakeFiles/pgraph_core.dir/bcc.cpp.o"
  "CMakeFiles/pgraph_core.dir/bcc.cpp.o.d"
  "CMakeFiles/pgraph_core.dir/bfs_pgas.cpp.o"
  "CMakeFiles/pgraph_core.dir/bfs_pgas.cpp.o.d"
  "CMakeFiles/pgraph_core.dir/cc_coalesced.cpp.o"
  "CMakeFiles/pgraph_core.dir/cc_coalesced.cpp.o.d"
  "CMakeFiles/pgraph_core.dir/cc_fine.cpp.o"
  "CMakeFiles/pgraph_core.dir/cc_fine.cpp.o.d"
  "CMakeFiles/pgraph_core.dir/cc_seq.cpp.o"
  "CMakeFiles/pgraph_core.dir/cc_seq.cpp.o.d"
  "CMakeFiles/pgraph_core.dir/cgm_cc.cpp.o"
  "CMakeFiles/pgraph_core.dir/cgm_cc.cpp.o.d"
  "CMakeFiles/pgraph_core.dir/ears.cpp.o"
  "CMakeFiles/pgraph_core.dir/ears.cpp.o.d"
  "CMakeFiles/pgraph_core.dir/euler_tour.cpp.o"
  "CMakeFiles/pgraph_core.dir/euler_tour.cpp.o.d"
  "CMakeFiles/pgraph_core.dir/list_ranking.cpp.o"
  "CMakeFiles/pgraph_core.dir/list_ranking.cpp.o.d"
  "CMakeFiles/pgraph_core.dir/mst_pgas.cpp.o"
  "CMakeFiles/pgraph_core.dir/mst_pgas.cpp.o.d"
  "CMakeFiles/pgraph_core.dir/mst_seq.cpp.o"
  "CMakeFiles/pgraph_core.dir/mst_seq.cpp.o.d"
  "CMakeFiles/pgraph_core.dir/mst_smp.cpp.o"
  "CMakeFiles/pgraph_core.dir/mst_smp.cpp.o.d"
  "libpgraph_core.a"
  "libpgraph_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgraph_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
