# Empty dependencies file for abl04_cache_model_validation.
# This may be replaced when dependencies are built.
