file(REMOVE_RECURSE
  "../bench/abl04_cache_model_validation"
  "../bench/abl04_cache_model_validation.pdb"
  "CMakeFiles/abl04_cache_model_validation.dir/abl04_cache_model_validation.cpp.o"
  "CMakeFiles/abl04_cache_model_validation.dir/abl04_cache_model_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl04_cache_model_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
