file(REMOVE_RECURSE
  "../bench/abl06_bfs_diameter"
  "../bench/abl06_bfs_diameter.pdb"
  "CMakeFiles/abl06_bfs_diameter.dir/abl06_bfs_diameter.cpp.o"
  "CMakeFiles/abl06_bfs_diameter.dir/abl06_bfs_diameter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl06_bfs_diameter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
