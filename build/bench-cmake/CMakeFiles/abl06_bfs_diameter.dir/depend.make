# Empty dependencies file for abl06_bfs_diameter.
# This may be replaced when dependencies are built.
