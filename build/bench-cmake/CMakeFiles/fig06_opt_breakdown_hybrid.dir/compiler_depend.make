# Empty compiler generated dependencies file for fig06_opt_breakdown_hybrid.
# This may be replaced when dependencies are built.
