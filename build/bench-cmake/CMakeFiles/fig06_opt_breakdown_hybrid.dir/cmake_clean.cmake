file(REMOVE_RECURSE
  "../bench/fig06_opt_breakdown_hybrid"
  "../bench/fig06_opt_breakdown_hybrid.pdb"
  "CMakeFiles/fig06_opt_breakdown_hybrid.dir/fig06_opt_breakdown_hybrid.cpp.o"
  "CMakeFiles/fig06_opt_breakdown_hybrid.dir/fig06_opt_breakdown_hybrid.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_opt_breakdown_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
