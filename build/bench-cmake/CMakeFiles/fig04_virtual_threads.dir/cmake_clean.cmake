file(REMOVE_RECURSE
  "../bench/fig04_virtual_threads"
  "../bench/fig04_virtual_threads.pdb"
  "CMakeFiles/fig04_virtual_threads.dir/fig04_virtual_threads.cpp.o"
  "CMakeFiles/fig04_virtual_threads.dir/fig04_virtual_threads.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_virtual_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
