# Empty dependencies file for fig04_virtual_threads.
# This may be replaced when dependencies are built.
