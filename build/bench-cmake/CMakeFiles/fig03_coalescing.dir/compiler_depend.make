# Empty compiler generated dependencies file for fig03_coalescing.
# This may be replaced when dependencies are built.
