file(REMOVE_RECURSE
  "../bench/fig03_coalescing"
  "../bench/fig03_coalescing.pdb"
  "CMakeFiles/fig03_coalescing.dir/fig03_coalescing.cpp.o"
  "CMakeFiles/fig03_coalescing.dir/fig03_coalescing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_coalescing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
