# Empty compiler generated dependencies file for fig10_mst_scaling_mn10.
# This may be replaced when dependencies are built.
