file(REMOVE_RECURSE
  "../bench/fig10_mst_scaling_mn10"
  "../bench/fig10_mst_scaling_mn10.pdb"
  "CMakeFiles/fig10_mst_scaling_mn10.dir/fig10_mst_scaling_mn10.cpp.o"
  "CMakeFiles/fig10_mst_scaling_mn10.dir/fig10_mst_scaling_mn10.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_mst_scaling_mn10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
