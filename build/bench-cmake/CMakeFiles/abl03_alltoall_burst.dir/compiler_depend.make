# Empty compiler generated dependencies file for abl03_alltoall_burst.
# This may be replaced when dependencies are built.
