file(REMOVE_RECURSE
  "../bench/abl03_alltoall_burst"
  "../bench/abl03_alltoall_burst.pdb"
  "CMakeFiles/abl03_alltoall_burst.dir/abl03_alltoall_burst.cpp.o"
  "CMakeFiles/abl03_alltoall_burst.dir/abl03_alltoall_burst.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl03_alltoall_burst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
