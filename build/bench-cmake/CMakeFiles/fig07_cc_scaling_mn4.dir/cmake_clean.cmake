file(REMOVE_RECURSE
  "../bench/fig07_cc_scaling_mn4"
  "../bench/fig07_cc_scaling_mn4.pdb"
  "CMakeFiles/fig07_cc_scaling_mn4.dir/fig07_cc_scaling_mn4.cpp.o"
  "CMakeFiles/fig07_cc_scaling_mn4.dir/fig07_cc_scaling_mn4.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_cc_scaling_mn4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
