# Empty dependencies file for fig07_cc_scaling_mn4.
# This may be replaced when dependencies are built.
