file(REMOVE_RECURSE
  "../bench/fig02_naive_vs_smp"
  "../bench/fig02_naive_vs_smp.pdb"
  "CMakeFiles/fig02_naive_vs_smp.dir/fig02_naive_vs_smp.cpp.o"
  "CMakeFiles/fig02_naive_vs_smp.dir/fig02_naive_vs_smp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_naive_vs_smp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
