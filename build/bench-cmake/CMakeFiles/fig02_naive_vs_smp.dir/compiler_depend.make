# Empty compiler generated dependencies file for fig02_naive_vs_smp.
# This may be replaced when dependencies are built.
