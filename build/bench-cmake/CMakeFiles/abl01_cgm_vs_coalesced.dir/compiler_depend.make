# Empty compiler generated dependencies file for abl01_cgm_vs_coalesced.
# This may be replaced when dependencies are built.
