file(REMOVE_RECURSE
  "../bench/abl01_cgm_vs_coalesced"
  "../bench/abl01_cgm_vs_coalesced.pdb"
  "CMakeFiles/abl01_cgm_vs_coalesced.dir/abl01_cgm_vs_coalesced.cpp.o"
  "CMakeFiles/abl01_cgm_vs_coalesced.dir/abl01_cgm_vs_coalesced.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl01_cgm_vs_coalesced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
