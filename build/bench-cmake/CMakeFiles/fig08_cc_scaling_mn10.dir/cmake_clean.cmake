file(REMOVE_RECURSE
  "../bench/fig08_cc_scaling_mn10"
  "../bench/fig08_cc_scaling_mn10.pdb"
  "CMakeFiles/fig08_cc_scaling_mn10.dir/fig08_cc_scaling_mn10.cpp.o"
  "CMakeFiles/fig08_cc_scaling_mn10.dir/fig08_cc_scaling_mn10.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_cc_scaling_mn10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
