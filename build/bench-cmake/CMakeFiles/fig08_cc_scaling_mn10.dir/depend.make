# Empty dependencies file for fig08_cc_scaling_mn10.
# This may be replaced when dependencies are built.
