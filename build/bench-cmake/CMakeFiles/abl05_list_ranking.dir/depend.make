# Empty dependencies file for abl05_list_ranking.
# This may be replaced when dependencies are built.
