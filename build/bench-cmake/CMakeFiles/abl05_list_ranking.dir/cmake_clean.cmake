file(REMOVE_RECURSE
  "../bench/abl05_list_ranking"
  "../bench/abl05_list_ranking.pdb"
  "CMakeFiles/abl05_list_ranking.dir/abl05_list_ranking.cpp.o"
  "CMakeFiles/abl05_list_ranking.dir/abl05_list_ranking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl05_list_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
