file(REMOVE_RECURSE
  "../bench/abl02_congestion_schedule"
  "../bench/abl02_congestion_schedule.pdb"
  "CMakeFiles/abl02_congestion_schedule.dir/abl02_congestion_schedule.cpp.o"
  "CMakeFiles/abl02_congestion_schedule.dir/abl02_congestion_schedule.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl02_congestion_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
