# Empty compiler generated dependencies file for abl02_congestion_schedule.
# This may be replaced when dependencies are built.
