# Empty compiler generated dependencies file for tab01_headline_speedups.
# This may be replaced when dependencies are built.
