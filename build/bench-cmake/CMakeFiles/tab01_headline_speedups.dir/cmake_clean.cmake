file(REMOVE_RECURSE
  "../bench/tab01_headline_speedups"
  "../bench/tab01_headline_speedups.pdb"
  "CMakeFiles/tab01_headline_speedups.dir/tab01_headline_speedups.cpp.o"
  "CMakeFiles/tab01_headline_speedups.dir/tab01_headline_speedups.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_headline_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
