# Empty dependencies file for abl08_hierarchical.
# This may be replaced when dependencies are built.
