file(REMOVE_RECURSE
  "../bench/abl08_hierarchical"
  "../bench/abl08_hierarchical.pdb"
  "CMakeFiles/abl08_hierarchical.dir/abl08_hierarchical.cpp.o"
  "CMakeFiles/abl08_hierarchical.dir/abl08_hierarchical.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl08_hierarchical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
