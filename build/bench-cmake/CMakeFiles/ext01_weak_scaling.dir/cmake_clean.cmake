file(REMOVE_RECURSE
  "../bench/ext01_weak_scaling"
  "../bench/ext01_weak_scaling.pdb"
  "CMakeFiles/ext01_weak_scaling.dir/ext01_weak_scaling.cpp.o"
  "CMakeFiles/ext01_weak_scaling.dir/ext01_weak_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext01_weak_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
