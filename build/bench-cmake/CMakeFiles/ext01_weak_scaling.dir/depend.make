# Empty dependencies file for ext01_weak_scaling.
# This may be replaced when dependencies are built.
