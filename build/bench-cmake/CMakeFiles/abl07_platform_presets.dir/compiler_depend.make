# Empty compiler generated dependencies file for abl07_platform_presets.
# This may be replaced when dependencies are built.
