file(REMOVE_RECURSE
  "../bench/abl07_platform_presets"
  "../bench/abl07_platform_presets.pdb"
  "CMakeFiles/abl07_platform_presets.dir/abl07_platform_presets.cpp.o"
  "CMakeFiles/abl07_platform_presets.dir/abl07_platform_presets.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl07_platform_presets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
