file(REMOVE_RECURSE
  "../bench/fig09_mst_scaling_mn4"
  "../bench/fig09_mst_scaling_mn4.pdb"
  "CMakeFiles/fig09_mst_scaling_mn4.dir/fig09_mst_scaling_mn4.cpp.o"
  "CMakeFiles/fig09_mst_scaling_mn4.dir/fig09_mst_scaling_mn4.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_mst_scaling_mn4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
