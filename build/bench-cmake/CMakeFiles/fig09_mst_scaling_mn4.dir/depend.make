# Empty dependencies file for fig09_mst_scaling_mn4.
# This may be replaced when dependencies are built.
