file(REMOVE_RECURSE
  "../bench/ext02_bcc_pipeline"
  "../bench/ext02_bcc_pipeline.pdb"
  "CMakeFiles/ext02_bcc_pipeline.dir/ext02_bcc_pipeline.cpp.o"
  "CMakeFiles/ext02_bcc_pipeline.dir/ext02_bcc_pipeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext02_bcc_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
