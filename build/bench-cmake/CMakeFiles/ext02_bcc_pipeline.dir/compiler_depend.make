# Empty compiler generated dependencies file for ext02_bcc_pipeline.
# This may be replaced when dependencies are built.
