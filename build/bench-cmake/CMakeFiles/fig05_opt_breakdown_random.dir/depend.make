# Empty dependencies file for fig05_opt_breakdown_random.
# This may be replaced when dependencies are built.
