file(REMOVE_RECURSE
  "../bench/fig05_opt_breakdown_random"
  "../bench/fig05_opt_breakdown_random.pdb"
  "CMakeFiles/fig05_opt_breakdown_random.dir/fig05_opt_breakdown_random.cpp.o"
  "CMakeFiles/fig05_opt_breakdown_random.dir/fig05_opt_breakdown_random.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_opt_breakdown_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
