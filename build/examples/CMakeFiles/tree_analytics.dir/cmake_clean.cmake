file(REMOVE_RECURSE
  "CMakeFiles/tree_analytics.dir/tree_analytics.cpp.o"
  "CMakeFiles/tree_analytics.dir/tree_analytics.cpp.o.d"
  "tree_analytics"
  "tree_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
