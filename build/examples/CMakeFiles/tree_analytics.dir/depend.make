# Empty dependencies file for tree_analytics.
# This may be replaced when dependencies are built.
