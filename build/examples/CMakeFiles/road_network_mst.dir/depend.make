# Empty dependencies file for road_network_mst.
# This may be replaced when dependencies are built.
