
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/upc_style_cc.cpp" "examples/CMakeFiles/upc_style_cc.dir/upc_style_cc.cpp.o" "gcc" "examples/CMakeFiles/upc_style_cc.dir/upc_style_cc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pgraph_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/pgraph_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pgraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/pgas/CMakeFiles/pgraph_pgas.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/pgraph_machine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
