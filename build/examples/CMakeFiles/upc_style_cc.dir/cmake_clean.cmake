file(REMOVE_RECURSE
  "CMakeFiles/upc_style_cc.dir/upc_style_cc.cpp.o"
  "CMakeFiles/upc_style_cc.dir/upc_style_cc.cpp.o.d"
  "upc_style_cc"
  "upc_style_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upc_style_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
