# Empty dependencies file for upc_style_cc.
# This may be replaced when dependencies are built.
